//! `scale` experiment — the out-of-core snapshot tier at LiveJournal-class
//! size.
//!
//! Pipeline: generate a directed Chung–Lu graph at n = 10⁷ / m = 10⁸ (the
//! LiveJournal class), write it as SNAP-style text, ingest that text once —
//! the only time the text is ever parsed — write the versioned binary CSR
//! snapshot, reload it, assert the reloaded graph is bit-identical, sweep
//! the work-stealing batch sampler across forced thread counts on the
//! reloaded graph (asserting bit-identical arenas at every count), and
//! finish with one pooled (`rr_sharing = on`) TI-CSRM allocation over five
//! identical Weighted-Cascade advertisers.
//!
//! `--quick` shrinks to n = 20 000 / m = 100 000 so CI can smoke the full
//! stage sequence in seconds. Results go to
//! `target/experiments/scale_tier.csv` plus a JSON summary
//! (`target/experiments/scale_summary.json`); full-size numbers are
//! recorded in `BENCH_scale.json` at the repo root.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use rand::{rngs::SmallRng, SeedableRng};
use rm_core::{AlgorithmKind, ScalableConfig, TiEngine};
use rm_diffusion::{TicModel, TopicDistribution};
use rm_graph::{degree, generators, io as graph_io, snapshot};
use rm_rrsets::PreparedSampler;

use crate::experiments::Opts;
use crate::report::{fmt, out_dir, Table};
use crate::setup::scalability_config;

/// Stage sizes for one tier.
struct Sizes {
    n: usize,
    m: usize,
    /// RR sets per arm of the sampler thread sweep.
    batch: usize,
}

fn sizes(quick: bool) -> Sizes {
    if quick {
        Sizes {
            n: 20_000,
            m: 100_000,
            batch: 20_000,
        }
    } else {
        Sizes {
            n: 10_000_000,
            m: 100_000_000,
            batch: 200_000,
        }
    }
}

/// Peak resident set size of this process so far, from `/proc/self/status`
/// (`VmHWM`). `None` where procfs is unavailable — the experiment records
/// the peak when it can and stays silent when it cannot.
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kib: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kib * 1024)
}

fn file_bytes(path: &PathBuf) -> u64 {
    std::fs::metadata(path).map(|m| m.len()).unwrap_or(0)
}

/// Runs the scale tier. Sizes are fixed by the tier (`--quick` vs full), not
/// by `--scale`: the point is one reproducible LiveJournal-class datum, not
/// a sweep.
pub fn scale_tier(opts: Opts) {
    let sz = sizes(opts.quick);
    let dir = out_dir().join("scale");
    std::fs::create_dir_all(&dir).expect("create scale working dir");
    let text_path = dir.join("edges.txt");
    let snap_path = dir.join("graph.rmcsr");
    let mut t = Table::new("scale_tier", &["stage", "wall_s", "detail"]);

    // Stage 1: in-memory build of the LiveJournal-class graph.
    let t0 = Instant::now();
    let mut rng = SmallRng::seed_from_u64(opts.seed);
    let g = generators::chung_lu_directed(sz.n, sz.m, 2.3, &mut rng);
    let build_s = t0.elapsed().as_secs_f64();
    t.push(vec![
        "build".into(),
        fmt(build_s),
        format!("chung_lu n={} m={}", g.num_nodes(), g.num_edges()),
    ]);
    println!(
        "[scale] built n={} m={} in {:.1}s",
        g.num_nodes(),
        g.num_edges(),
        build_s
    );
    let max_outdeg = degree::out_degree_stats(&g).max;

    // Stage 2: SNAP-style text, written once.
    let t0 = Instant::now();
    graph_io::write_edge_list_file(&g, &text_path).expect("write edge list");
    let text_write_s = t0.elapsed().as_secs_f64();
    let text_bytes = file_bytes(&text_path);
    t.push(vec![
        "text-write".into(),
        fmt(text_write_s),
        format!("{text_bytes} bytes"),
    ]);

    // Stage 3: the one-and-only text parse, through the streaming compacted
    // reader (count-header preallocation + reused line buffer).
    let t0 = Instant::now();
    let file = std::fs::File::open(&text_path).expect("open edge list");
    let (compacted, istats) =
        graph_io::read_edge_list_compacted_with_stats(std::io::BufReader::new(file))
            .expect("ingest edge list");
    let text_ingest_s = t0.elapsed().as_secs_f64();
    t.push(vec![
        "text-ingest".into(),
        fmt(text_ingest_s),
        format!(
            "peak {} bytes, header_prealloc={}, n={}",
            istats.peak_bytes,
            istats.header_preallocated,
            compacted.graph.num_nodes()
        ),
    ]);
    println!(
        "[scale] text ingest {text_ingest_s:.1}s (peak {} bytes)",
        istats.peak_bytes
    );
    // The text round trip drops isolated nodes (edge lists cannot express
    // them — that is one reason the snapshot tier exists), so the ingested
    // graph is only used for the timing arm.
    drop(compacted);

    // Stage 4: binary snapshot of the original graph.
    let t0 = Instant::now();
    snapshot::write_snapshot_file(&g, None, &snap_path).expect("write snapshot");
    let snap_write_s = t0.elapsed().as_secs_f64();
    let snap_bytes = file_bytes(&snap_path);
    t.push(vec![
        "snapshot-write".into(),
        fmt(snap_write_s),
        format!("{snap_bytes} bytes"),
    ]);

    // Stage 5: reload and verify bit-identity (isolated nodes included).
    let t0 = Instant::now();
    let snap = snapshot::read_snapshot_file(&snap_path).expect("read snapshot");
    let reload_s = t0.elapsed().as_secs_f64();
    // INVARIANT: the snapshot tier's whole contract is that reload returns
    // the exact in-memory graph; a mismatch must abort the run.
    assert!(
        snap.graph == g,
        "reloaded snapshot differs from source graph"
    );
    drop(g);
    let reload_speedup = text_ingest_s / reload_s.max(1e-9);
    t.push(vec![
        "snapshot-reload".into(),
        fmt(reload_s),
        format!("bit-identical, {reload_speedup:.1}x faster than text ingest"),
    ]);
    println!("[scale] snapshot reload {reload_s:.2}s = {reload_speedup:.1}x text ingest");

    // Stage 6: work-stealing sampler sweep on the reloaded graph. Forced
    // thread counts exercise the sharded path even on single-core runners;
    // every count must reproduce the single-thread arena bit-for-bit.
    let probs = TicModel::weighted_cascade(&snap.graph).ad_probs(&TopicDistribution::uniform(1));
    let mut sampler = PreparedSampler::new(&snap.graph, &probs);
    let mut sweep: Vec<(usize, f64)> = Vec::new();
    let mut reference = None;
    for threads in [1usize, 2, 4] {
        sampler.set_thread_count(threads);
        let t0 = Instant::now();
        let out = sampler.sample_batch(&snap.graph, sz.batch, opts.seed ^ 0x5CA1E, 0);
        let wall = t0.elapsed().as_secs_f64();
        match &reference {
            None => reference = Some(out),
            // INVARIANT: sampling is deterministic in the global set index;
            // any cross-thread-count divergence is a correctness bug.
            Some(r) => assert!(*r == out, "sampler output differs at {threads} threads"),
        }
        t.push(vec![
            format!("sample-t{threads}"),
            fmt(wall),
            format!(
                "{} sets, {:.0} sets/s",
                sz.batch,
                sz.batch as f64 / wall.max(1e-9)
            ),
        ]);
        println!(
            "[scale] sample_batch {} sets @ {threads} threads: {wall:.2}s",
            sz.batch
        );
        sweep.push((threads, wall));
    }
    // Per-ad budget for stage 7, derived from the sweep sample. The engine
    // charges budgets with ρ = π̂ + incentives — expected engagement spend
    // counts, not just seed payments — so the first hub commit charges about
    // cpe·n·f_max (f_max = the most-covered node's RR-set fraction) plus its
    // incentive 0.2·(max_outdeg + 1). A budget of three such charges keeps
    // Algorithm 2's strict termination from firing on the first candidate at
    // any graph size; a fixed budget cannot, because f_max is a property of
    // the realized cascade model, not of n.
    let budget = {
        let (arena, _) = reference.as_ref().expect("sweep ran");
        let mut counts = vec![0u32; snap.graph.num_nodes()];
        for &v in arena.node_slice() {
            counts[v as usize] += 1;
        }
        let f_max = f64::from(counts.iter().copied().max().unwrap_or(0)) / sz.batch as f64;
        let hub_pi = snap.graph.num_nodes() as f64 * f_max;
        3.0 * (hub_pi + 0.2 * (max_outdeg as f64 + 1.0))
    };
    drop(reference);
    println!("[scale] derived per-ad budget {budget:.0}");

    // Stage 7: one pooled allocation — five identical WC advertisers served
    // from a single shared RR arena (`rr_sharing = on`).
    let graph = Arc::new(snap.graph);
    let tic = TicModel::weighted_cascade(&graph);
    let ads = (0..5)
        .map(|_| rm_core::Advertiser::new(1.0, budget, TopicDistribution::uniform(1)))
        .collect();
    let inst = rm_core::RmInstance::build(
        graph,
        &tic,
        ads,
        rm_core::IncentiveModel::Linear { alpha: 0.2 },
        rm_core::SingletonMethod::OutDegree,
        opts.seed ^ 0x5CA1E,
    );
    let mut cfg = ScalableConfig {
        rr_sharing: true,
        ..opts.engine_cfg(scalability_config(opts.seed))
    };
    if opts.quick {
        // The CI smoke only needs the pooled path exercised, not the full
        // Table-3 sample size.
        cfg.max_sets_per_ad = 200_000;
    }
    let t0 = Instant::now();
    let (alloc, stats) = TiEngine::new(&inst, AlgorithmKind::TiCsrm, cfg).run();
    let alloc_s = t0.elapsed().as_secs_f64();
    t.push(vec![
        "pooled-alloc".into(),
        fmt(alloc_s),
        format!(
            "h=5 rr_sharing=on: {} rr sets, {} seeds, revenue {}, rr_mem {} bytes",
            stats.rr_sets_sampled,
            alloc.num_seeds(),
            fmt(stats.total_revenue()),
            stats.rr_memory_bytes
        ),
    ]);
    println!(
        "[scale] pooled allocation {alloc_s:.1}s ({} rr sets, {} seeds)",
        stats.rr_sets_sampled,
        alloc.num_seeds()
    );

    let peak = peak_rss_bytes();
    t.push(vec![
        "peak-rss".into(),
        "-".into(),
        peak.map_or("unavailable".into(), |b| format!("{b} bytes")),
    ]);
    t.emit();

    // Machine-readable summary for BENCH_scale.json (hand-rolled JSON; the
    // workspace has no serialization crates).
    let sweep_json = sweep
        .iter()
        .map(|(threads, wall)| format!("\"{threads}\": {wall:.3}"))
        .collect::<Vec<_>>()
        .join(", ");
    let json = format!(
        concat!(
            "{{\n",
            "  \"tier\": \"{tier}\", \"n\": {n}, \"m\": {m},\n",
            "  \"build_s\": {build:.2}, \"text_write_s\": {tw:.2}, \"text_bytes\": {tb},\n",
            "  \"text_ingest_s\": {ti:.2}, \"ingest_peak_bytes\": {ip},\n",
            "  \"snapshot_write_s\": {sw:.2}, \"snapshot_bytes\": {sb},\n",
            "  \"snapshot_reload_s\": {sr:.3}, \"reload_speedup\": {spd:.1}, \"bit_identical\": true,\n",
            "  \"sampler_sweep\": {{ \"batch\": {batch}, \"wall_s_by_threads\": {{ {sweep} }} }},\n",
            "  \"pooled_alloc\": {{ \"h\": 5, \"budget\": {budget:.1}, \"wall_s\": {aw:.2}, ",
            "\"rr_sets\": {sets}, \"seeds\": {seeds}, \"revenue\": {rev:.1}, \"rr_memory_bytes\": {rrm} }},\n",
            "  \"peak_rss_bytes\": {rss}\n",
            "}}\n"
        ),
        tier = if opts.quick { "quick" } else { "full" },
        n = sz.n,
        m = sz.m,
        build = build_s,
        tw = text_write_s,
        tb = text_bytes,
        ti = text_ingest_s,
        ip = istats.peak_bytes,
        sw = snap_write_s,
        sb = snap_bytes,
        sr = reload_s,
        spd = reload_speedup,
        batch = sz.batch,
        sweep = sweep_json,
        budget = budget,
        aw = alloc_s,
        sets = stats.rr_sets_sampled,
        seeds = alloc.num_seeds(),
        rev = stats.total_revenue(),
        rrm = stats.rr_memory_bytes,
        rss = peak.map_or("null".into(), |b| b.to_string()),
    );
    let json_path = out_dir().join("scale_summary.json");
    std::fs::write(&json_path, &json).expect("write scale summary");
    println!("[json] {}", json_path.display());
    print!("{json}");
}

#[cfg(test)]
mod tests {
    #[test]
    fn peak_rss_reads_on_linux() {
        // Graceful-None contract: the helper must never panic, and on the
        // Linux CI runners it should actually report a positive peak.
        if cfg!(target_os = "linux") {
            assert!(super::peak_rss_bytes().unwrap_or(1) > 0);
        }
    }
}
