//! One function per paper artifact (tables, figures, ablations).
//!
//! Every function prints the same rows/series the paper reports and writes a
//! CSV under `target/experiments/`. See `DESIGN.md` for the per-experiment
//! index and `EXPERIMENTS.md` for paper-vs-measured records.

use rm_core::{
    evaluate_allocation, AlgorithmKind, EvalMethod, RmInstance, SamplingStrategy, ScalableConfig,
    TiEngine, Window,
};
use rm_graph::{degree, SyntheticDataset};

use crate::report::{fmt, Table};
use crate::setup::{
    self, quality_config, quality_instance, scalability_config, scalability_instance, ModelKind,
};

/// Global knobs of a harness invocation.
#[derive(Clone, Copy, Debug)]
pub struct Opts {
    /// Size multiplier applied to every dataset (1.0 = paper sizes).
    pub scale: f64,
    /// Master seed.
    pub seed: u64,
    /// Shrink grids for smoke runs.
    pub quick: bool,
    /// Use the paper's ε = 0.1 for quality experiments (default 0.3).
    pub paper_eps: bool,
    /// Worker threads for the engine's per-round selection fan-out
    /// (`ScalableConfig::selection_threads`); `usize::MAX` = hardware
    /// parallelism. Results are bit-identical for every value.
    pub selection_threads: usize,
    /// Worker-thread cap for RR-set batch sampling
    /// (`ScalableConfig::sampler_threads`); `usize::MAX` = hardware
    /// parallelism. Results are bit-identical for every value.
    pub sampler_threads: usize,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            scale: 0.1,
            seed: 20_170_419,
            quick: false,
            paper_eps: false,
            selection_threads: usize::MAX,
            sampler_threads: usize::MAX,
        }
    }
}

impl Opts {
    /// Applies the harness-level engine knobs on top of a base config.
    pub(crate) fn engine_cfg(&self, base: ScalableConfig) -> ScalableConfig {
        ScalableConfig {
            selection_threads: self.selection_threads,
            sampler_threads: self.sampler_threads,
            ..base
        }
    }
}

const QUALITY_DATASETS: [SyntheticDataset; 2] = [
    SyntheticDataset::FlixsterLike,
    SyntheticDataset::EpinionsLike,
];

const ALGOS: [AlgorithmKind; 4] = [
    AlgorithmKind::TiCsrm,
    AlgorithmKind::TiCarm,
    AlgorithmKind::PageRankGr,
    AlgorithmKind::PageRankRr,
];

fn eval_theta(inst: &RmInstance) -> usize {
    (inst.num_nodes() * 50).clamp(50_000, 500_000)
}

/// Table 1: dataset statistics (paper sizes and generated-at-scale sizes).
pub fn table1(opts: Opts) {
    let mut t = Table::new(
        "table1_datasets",
        &[
            "dataset",
            "paper_nodes",
            "paper_edges",
            "type",
            "gen_nodes",
            "gen_edges",
            "gen_max_outdeg",
        ],
    );
    for ds in SyntheticDataset::ALL {
        // LiveJournal-like at a further 1/10 of the requested scale so the
        // statistics run stays fast; all other experiments do the same.
        let s = lj_scale(ds, opts.scale);
        let g = ds.generate(s, opts.seed);
        let spec = ds.spec();
        let st = degree::out_degree_stats(&g);
        t.push(vec![
            spec.name.into(),
            spec.paper_nodes.to_string(),
            spec.paper_edges.to_string(),
            if spec.directed {
                "directed".into()
            } else {
                "undirected".into()
            },
            g.num_nodes().to_string(),
            g.num_edges().to_string(),
            st.max.to_string(),
        ]);
    }
    t.emit();
}

fn lj_scale(ds: SyntheticDataset, scale: f64) -> f64 {
    if ds == SyntheticDataset::LiveJournalLike {
        scale * 0.1
    } else {
        scale
    }
}

/// Table 2: advertiser budgets and CPEs actually used at this scale.
pub fn table2(opts: Opts) {
    let mut t = Table::new(
        "table2_terms",
        &[
            "dataset",
            "budget_mean",
            "budget_max",
            "budget_min",
            "cpe_mean",
            "cpe_max",
            "cpe_min",
        ],
    );
    for ds in QUALITY_DATASETS {
        let terms = setup::table2_terms(ds, 10, opts.scale);
        let budgets: Vec<f64> = terms.iter().map(|&(_, b)| b).collect();
        let cpes: Vec<f64> = terms.iter().map(|&(c, _)| c).collect();
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let max = |v: &[f64]| v.iter().cloned().fold(f64::MIN, f64::max);
        let min = |v: &[f64]| v.iter().cloned().fold(f64::MAX, f64::min);
        t.push(vec![
            ds.to_string(),
            fmt(mean(&budgets)),
            fmt(max(&budgets)),
            fmt(min(&budgets)),
            fmt(mean(&cpes)),
            fmt(max(&cpes)),
            fmt(min(&cpes)),
        ]);
    }
    t.emit();
}

/// Figure 1: the Theorem 2 tightness gadget, solved exactly.
pub fn fig1(_opts: Opts) {
    use rm_core::instances::tightness_instance;
    use rm_core::oracle::{ExactOracle, SpreadOracle};

    let (inst, _) = tightness_instance();
    let mut t = Table::new("fig1_tightness", &["quantity", "value"]);

    let mut oracle = ExactOracle::new(&inst.graph, &inst.ad_probs);
    let ca = rm_core::exact_ca_greedy(&inst, &mut oracle);
    let ca_rev = ExactOracle::new(&inst.graph, &inst.ad_probs).spread(0, &ca.seeds[0]);
    let mut oracle = ExactOracle::new(&inst.graph, &inst.ad_probs);
    let cs = rm_core::exact_cs_greedy(&inst, &mut oracle);
    let cs_rev = ExactOracle::new(&inst.graph, &inst.ad_probs).spread(0, &cs.seeds[0]);

    let p = inst.to_exact_problem();
    let (_, opt) = rm_submod::exact::brute_force_optimum(&p);
    let (r, big_r) = rm_submod::exact::independence_ranks(&p);
    let kappa = p.pi_curvature();
    let bound = rm_submod::theorem2_bound(kappa, r, big_r);

    t.push(vec!["OPT revenue".into(), fmt(opt)]);
    t.push(vec!["CA-GREEDY revenue".into(), fmt(ca_rev)]);
    t.push(vec!["CS-GREEDY revenue".into(), fmt(cs_rev)]);
    t.push(vec!["total curvature κ_π".into(), fmt(kappa)]);
    t.push(vec!["lower rank r".into(), r.to_string()]);
    t.push(vec!["upper rank R".into(), big_r.to_string()]);
    t.push(vec!["Theorem 2 bound".into(), fmt(bound)]);
    t.push(vec!["CA / OPT (tight?)".into(), fmt(ca_rev / opt)]);
    t.emit();
}

/// Figures 2 and 3: total revenue and total seeding cost as functions of α,
/// for each incentive model, dataset and algorithm. Computed in one sweep.
pub fn fig2_fig3(opts: Opts) {
    quality_sweep(
        opts,
        "fig2/3",
        ("fig2_revenue_vs_alpha", "fig3_seeding_cost_vs_alpha"),
        setup::QualityContext::new,
        &ALGOS,
        0xE,
    );
}

/// `lt-quality`: the Fig. 2/3-style revenue and seeding-cost sweep under
/// the **Linear Threshold** model (incentive models × α grid × datasets),
/// TI-CSRM vs TI-CARM. In-weights come from the dataset's LT derivation
/// (WC `1/indeg` for Epinions-like, water-filled trivalency for
/// Flixster-like); pricing and evaluation both run under LT.
pub fn lt_quality(opts: Opts) {
    quality_sweep(
        opts,
        "lt-quality",
        ("ltq_revenue_vs_alpha", "ltq_seeding_cost_vs_alpha"),
        setup::QualityContext::new_lt,
        &[AlgorithmKind::TiCsrm, AlgorithmKind::TiCarm],
        0x17,
    );
}

/// `tic-quality`: the Fig. 2/3-style revenue and seeding-cost sweep under
/// the **lazy-mixing TIC** model — the paper's actual topical setting run
/// end-to-end without per-ad flattening. Flixster-like uses the topical
/// L = 10 table with five purely-competing ad pairs; Epinions-like runs
/// Weighted Cascade as the L = 1 degenerate TIC. TI-CSRM vs TI-CARM.
pub fn tic_quality(opts: Opts) {
    quality_sweep(
        opts,
        "tic-quality",
        ("ticq_revenue_vs_alpha", "ticq_seeding_cost_vs_alpha"),
        setup::QualityContext::new_tic,
        &[AlgorithmKind::TiCsrm, AlgorithmKind::TiCarm],
        0x71C,
    );
}

/// The shared Fig. 2/3-shaped sweep: incentive models × α grid × datasets
/// × algorithms, one engine run per cell, scored on an independent sample,
/// reported as paired revenue/seeding-cost tables. `ctx_new` fixes the
/// diffusion family (IC for fig2/3, LT for `lt-quality`, lazy-mixing TIC
/// for `tic-quality`).
fn quality_sweep(
    opts: Opts,
    tag: &str,
    (rev_name, cost_name): (&str, &str),
    ctx_new: fn(SyntheticDataset, usize, f64, u64) -> setup::QualityContext,
    algos: &[AlgorithmKind],
    eval_salt: u64,
) {
    let headers = |metric: &'static str| {
        [
            "dataset",
            "model",
            "alpha",
            "algorithm",
            metric,
            "seeds",
            "time_s",
        ]
    };
    let mut rev = Table::new(rev_name, &headers("revenue"));
    let mut cost = Table::new(cost_name, &headers("seeding_cost"));
    let h = 10;
    for ds in QUALITY_DATASETS {
        let ctx = ctx_new(ds, h, opts.scale, opts.seed);
        for model in ModelKind::ALL {
            let mut grid = model.alpha_grid(ds);
            if opts.quick {
                grid = vec![grid[0], grid[grid.len() - 1]];
            }
            for alpha in grid {
                let inst = ctx.instance(model.at(alpha));
                let eval = EvalMethod::RrSets {
                    theta: eval_theta(&inst),
                };
                for &kind in algos {
                    let cfg = opts.engine_cfg(quality_config(opts.seed, opts.paper_eps));
                    let (alloc, stats) = TiEngine::new(&inst, kind, cfg).run();
                    // Golden-pinned legacy stream. rm-lint: allow(rng-discipline)
                    let report = evaluate_allocation(&inst, &alloc, eval, opts.seed ^ eval_salt);
                    let base = vec![
                        ds.to_string(),
                        model.name().into(),
                        format!("{alpha}"),
                        kind.name().into(),
                    ];
                    let mut r1 = base.clone();
                    r1.extend([
                        fmt(report.total_revenue()),
                        alloc.num_seeds().to_string(),
                        fmt(stats.elapsed.as_secs_f64()),
                    ]);
                    rev.push(r1);
                    let mut r2 = base;
                    r2.extend([
                        fmt(report.total_seeding_cost()),
                        alloc.num_seeds().to_string(),
                        fmt(stats.elapsed.as_secs_f64()),
                    ]);
                    cost.push(r2);
                }
                println!("[{tag}] {ds} {} α={alpha} done", model.name());
            }
        }
    }
    rev.emit();
    cost.emit();
}

/// Figure 4: revenue vs running time across CS window sizes.
pub fn fig4(opts: Opts) {
    let mut t = Table::new(
        "fig4_window_tradeoff",
        &[
            "dataset",
            "alpha",
            "window",
            "revenue",
            "time_s",
            "seeds",
            "theta_total",
        ],
    );
    let h = 10;
    let windows: Vec<Option<usize>> = if opts.quick {
        vec![Some(1), Some(100), None]
    } else {
        vec![
            Some(1),
            Some(50),
            Some(100),
            Some(250),
            Some(500),
            Some(1000),
            Some(2500),
            Some(5000),
            None, // full window (w = n)
        ]
    };
    for ds in QUALITY_DATASETS {
        let ctx = setup::QualityContext::new(ds, h, opts.scale, opts.seed);
        for alpha in [0.2, 0.5] {
            let inst = ctx.instance(ModelKind::Linear.at(alpha));
            let eval = EvalMethod::RrSets {
                theta: eval_theta(&inst),
            };
            for w in &windows {
                let mut cfg = opts.engine_cfg(quality_config(opts.seed, opts.paper_eps));
                cfg.window = match w {
                    Some(s) => Window::Size(*s),
                    None => Window::Full,
                };
                let (alloc, stats) = TiEngine::new(&inst, AlgorithmKind::TiCsrm, cfg).run();
                let report = evaluate_allocation(&inst, &alloc, eval, opts.seed ^ 0x4);
                t.push(vec![
                    ds.to_string(),
                    format!("{alpha}"),
                    w.map_or("n".into(), |s| s.to_string()),
                    fmt(report.total_revenue()),
                    fmt(stats.elapsed.as_secs_f64()),
                    alloc.num_seeds().to_string(),
                    stats.total_theta().to_string(),
                ]);
            }
            println!("[fig4] {ds} α={alpha} done");
        }
    }
    t.emit();
}

/// Figure 5 + Table 3 share their sweeps: runtime and memory vs `h`, and
/// runtime vs budget.
pub fn fig5_table3(opts: Opts) {
    let mut time_h = Table::new(
        "fig5_runtime_vs_h",
        &["dataset", "h", "algorithm", "time_s", "seeds", "revenue"],
    );
    let mut mem = Table::new(
        "table3_memory_vs_h",
        &[
            "dataset",
            "h",
            "algorithm",
            "memory_gib",
            "theta_total",
            "seeds",
        ],
    );
    let mut time_b = Table::new(
        "fig5_runtime_vs_budget",
        &[
            "dataset",
            "budget",
            "algorithm",
            "time_s",
            "seeds",
            "revenue",
        ],
    );

    let h_grid: Vec<usize> = if opts.quick {
        vec![1, 5]
    } else {
        vec![1, 5, 10, 15, 20]
    };
    let cases = [
        (
            SyntheticDataset::DblpLike,
            10_000.0,
            vec![5_000.0, 10_000.0, 15_000.0, 20_000.0, 25_000.0, 30_000.0],
        ),
        (
            SyntheticDataset::LiveJournalLike,
            100_000.0,
            vec![50_000.0, 100_000.0, 150_000.0, 200_000.0, 250_000.0],
        ),
    ];
    for (ds, fixed_budget, budget_grid) in cases {
        let s = lj_scale(ds, opts.scale);
        // Budgets scale with dataset size so the seeding regime matches.
        let bscale = s;
        for &h in &h_grid {
            let inst = scalability_instance(ds, h, fixed_budget * bscale, s, opts.seed);
            for kind in [AlgorithmKind::TiCsrm, AlgorithmKind::TiCarm] {
                let (alloc, stats) =
                    TiEngine::new(&inst, kind, opts.engine_cfg(scalability_config(opts.seed)))
                        .run();
                time_h.push(vec![
                    ds.to_string(),
                    h.to_string(),
                    kind.name().into(),
                    fmt(stats.elapsed.as_secs_f64()),
                    alloc.num_seeds().to_string(),
                    fmt(stats.total_revenue()),
                ]);
                mem.push(vec![
                    ds.to_string(),
                    h.to_string(),
                    kind.name().into(),
                    format!("{:.4}", stats.rr_memory_gib()),
                    stats.total_theta().to_string(),
                    alloc.num_seeds().to_string(),
                ]);
            }
            println!("[fig5/table3] {ds} h={h} done");
        }
        let budgets = if opts.quick {
            vec![budget_grid[0], *budget_grid.last().expect("non-empty grid")]
        } else {
            budget_grid
        };
        for budget in budgets {
            let inst = scalability_instance(ds, 5, budget * bscale, s, opts.seed);
            for kind in [AlgorithmKind::TiCsrm, AlgorithmKind::TiCarm] {
                let (alloc, stats) =
                    TiEngine::new(&inst, kind, opts.engine_cfg(scalability_config(opts.seed)))
                        .run();
                time_b.push(vec![
                    ds.to_string(),
                    fmt(budget * bscale),
                    kind.name().into(),
                    fmt(stats.elapsed.as_secs_f64()),
                    alloc.num_seeds().to_string(),
                    fmt(stats.total_revenue()),
                ]);
            }
            println!("[fig5] {ds} budget={budget} done");
        }
    }
    time_h.emit();
    time_b.emit();
    mem.emit();
}

/// Ablation: CELF-style lazy heaps vs eager full scans.
pub fn ablation_lazy(opts: Opts) {
    let mut t = Table::new(
        "ablation_lazy_vs_eager",
        &[
            "dataset",
            "mode",
            "time_s",
            "candidate_evals",
            "revenue",
            "seeds",
        ],
    );
    let inst = quality_instance(
        SyntheticDataset::EpinionsLike,
        ModelKind::Linear.at(0.2),
        10,
        opts.scale,
        opts.seed,
    );
    for lazy in [true, false] {
        let cfg = ScalableConfig {
            lazy,
            ..opts.engine_cfg(quality_config(opts.seed, opts.paper_eps))
        };
        let (alloc, stats) = TiEngine::new(&inst, AlgorithmKind::TiCsrm, cfg).run();
        t.push(vec![
            "epinions-like".into(),
            if lazy { "lazy".into() } else { "eager".into() },
            fmt(stats.elapsed.as_secs_f64()),
            stats.candidate_evaluations.to_string(),
            fmt(stats.total_revenue()),
            alloc.num_seeds().to_string(),
        ]);
    }
    t.emit();
}

/// Ablation: Algorithm 2's strict termination vs Algorithm 1's
/// continue-past-infeasible.
pub fn ablation_termination(opts: Opts) {
    let mut t = Table::new(
        "ablation_termination",
        &["dataset", "alpha", "mode", "revenue", "seeds", "time_s"],
    );
    let inst_of = |alpha: f64| {
        quality_instance(
            SyntheticDataset::EpinionsLike,
            ModelKind::Linear.at(alpha),
            10,
            opts.scale,
            opts.seed,
        )
    };
    for alpha in [0.2, 0.5] {
        let inst = inst_of(alpha);
        let eval = EvalMethod::RrSets {
            theta: eval_theta(&inst),
        };
        for strict in [true, false] {
            let cfg = ScalableConfig {
                strict_termination: strict,
                ..opts.engine_cfg(quality_config(opts.seed, opts.paper_eps))
            };
            let (alloc, stats) = TiEngine::new(&inst, AlgorithmKind::TiCsrm, cfg).run();
            let report = evaluate_allocation(&inst, &alloc, eval, 1);
            t.push(vec![
                "epinions-like".into(),
                format!("{alpha}"),
                if strict {
                    "strict (Alg.2)".into()
                } else {
                    "continue (Alg.1)".into()
                },
                fmt(report.total_revenue()),
                alloc.num_seeds().to_string(),
                fmt(stats.elapsed.as_secs_f64()),
            ]);
        }
    }
    t.emit();
}

/// Ablation: OPIM-style online stopping rule vs the TIM-style fixed-θ
/// schedule, on the Table-3-style TI-CSRM scalability workload — RR sets
/// drawn (both streams counted), wall time, and independently evaluated
/// revenue at equal ε. The `opim_vs_fixed_theta` entry of
/// `BENCH_rrsets.json` records a full-size run of this experiment.
pub fn ablation_opim(opts: Opts) {
    let mut t = Table::new(
        "ablation_opim",
        &[
            "dataset",
            "strategy",
            "rr_sets",
            "theta_total",
            "bound_checks",
            "time_s",
            "revenue",
            "seeds",
        ],
    );
    let ds = SyntheticDataset::DblpLike;
    let s = lj_scale(ds, opts.scale);
    let inst = scalability_instance(ds, 5, 10_000.0 * s, s, opts.seed);
    let eval = EvalMethod::RrSets {
        theta: eval_theta(&inst),
    };
    let mut drawn = [0u64; 2];
    let mut wall = [0f64; 2];
    for (i, strategy) in [SamplingStrategy::FixedTheta, SamplingStrategy::OnlineBounds]
        .into_iter()
        .enumerate()
    {
        let cfg = ScalableConfig {
            sampling: strategy,
            ..opts.engine_cfg(scalability_config(opts.seed))
        };
        let (alloc, stats) = TiEngine::new(&inst, AlgorithmKind::TiCsrm, cfg).run();
        let report = evaluate_allocation(&inst, &alloc, eval, opts.seed ^ 0x0B);
        drawn[i] = stats.rr_sets_sampled;
        wall[i] = stats.elapsed.as_secs_f64();
        t.push(vec![
            ds.to_string(),
            strategy.name().into(),
            stats.rr_sets_sampled.to_string(),
            stats.total_theta().to_string(),
            stats.bound_checks.to_string(),
            fmt(stats.elapsed.as_secs_f64()),
            fmt(report.total_revenue()),
            alloc.num_seeds().to_string(),
        ]);
        println!("[ablation-opim] {} done", strategy.name());
    }
    t.emit();
    println!(
        "[ablation-opim] sets drawn: fixed {} vs online {} ({:.1}% fewer); wall {:.2}s vs {:.2}s",
        drawn[0],
        drawn[1],
        100.0 * (1.0 - drawn[1] as f64 / drawn[0].max(1) as f64),
        wall[0],
        wall[1],
    );
}

/// Ablation (PR 8): shared cross-advertiser RR pool vs private per-ad
/// streams. The first arm is the fig5-style h-sweep — `h` identical ads
/// over one Weighted-Cascade model, where the pool serves every ad from a
/// single group arena, so total RR sets sampled should grow sublinearly in
/// `h` while the private baseline grows as `h·θ`. The second arm puts four
/// distinct-or-equal topic mixtures over ONE topical TIC table to exercise
/// the importance-reweighted tenant path. The `rr_pool_sharing` entry of
/// `BENCH_rrsets.json` records a full-size run of this experiment.
pub fn pool_ablation(opts: Opts) {
    let mut t = Table::new(
        "pool_ablation",
        &[
            "workload",
            "h",
            "rr_sharing",
            "rr_sets",
            "pool_groups",
            "pooled_ads",
            "reweighted_ads",
            "mem_mib",
            "time_s",
            "revenue",
            "seeds",
        ],
    );
    let ds = SyntheticDataset::DblpLike;
    let s = lj_scale(ds, opts.scale);
    let push_run = |t: &mut Table, workload: &str, h: usize, inst: &RmInstance, sharing: bool| {
        let cfg = ScalableConfig {
            rr_sharing: sharing,
            ..opts.engine_cfg(scalability_config(opts.seed))
        };
        let (alloc, stats) = TiEngine::new(inst, AlgorithmKind::TiCsrm, cfg).run();
        let eval = EvalMethod::RrSets {
            theta: eval_theta(inst),
        };
        let report = evaluate_allocation(inst, &alloc, eval, opts.seed ^ 0x0C);
        t.push(vec![
            workload.into(),
            h.to_string(),
            if sharing { "on" } else { "off" }.into(),
            stats.rr_sets_sampled.to_string(),
            stats.pool_groups.to_string(),
            stats.pooled_ads.to_string(),
            stats.reweighted_ads.to_string(),
            fmt(stats.rr_memory_bytes as f64 / (1024.0 * 1024.0)),
            fmt(stats.elapsed.as_secs_f64()),
            fmt(report.total_revenue()),
            alloc.num_seeds().to_string(),
        ]);
        stats.rr_sets_sampled
    };
    // Arm 1: identical ads, h-sweep (the fig5 sublinearity claim).
    let hs: &[usize] = if opts.quick { &[2, 5] } else { &[5, 10, 15] };
    for &h in hs {
        let inst = scalability_instance(ds, h, 10_000.0 * s, s, opts.seed);
        let private = push_run(&mut t, "identical-wc", h, &inst, false);
        let pooled = push_run(&mut t, "identical-wc", h, &inst, true);
        println!(
            "[pool-ablation] h={h}: private {private} sets vs pooled {pooled} \
             ({:.1}% fewer)",
            100.0 * (1.0 - pooled as f64 / private.max(1) as f64),
        );
    }
    // Arm 2: one shared 2-topic TIC table, mixtures [.7,.3]/[.3,.7]/[.5,.5]
    // and a repeat of the founder's — one group, one identical twin, two
    // reweighted tenants.
    {
        use rand::{rngs::SmallRng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(opts.seed);
        let graph = std::sync::Arc::new(ds.generate(s, opts.seed));
        let tic = std::sync::Arc::new(rm_diffusion::TicModel::topical(
            &graph,
            2,
            Default::default(),
            &mut rng,
        ));
        let mixtures: [&[f32]; 4] = [&[0.7, 0.3], &[0.3, 0.7], &[0.5, 0.5], &[0.7, 0.3]];
        let ads = mixtures
            .iter()
            .map(|m| {
                rm_core::Advertiser::new(1.0, 10_000.0 * s, rm_diffusion::TopicDistribution::new(m))
            })
            .collect();
        let inst = rm_core::RmInstance::build_tic(
            graph,
            tic,
            ads,
            rm_core::IncentiveModel::Linear { alpha: 0.2 },
            rm_core::SingletonMethod::OutDegree,
            opts.seed ^ 0x5CA1E,
        );
        let private = push_run(&mut t, "tic-mixtures", 4, &inst, false);
        let pooled = push_run(&mut t, "tic-mixtures", 4, &inst, true);
        println!("[pool-ablation] tic-mixtures: private {private} sets vs pooled {pooled}");
    }
    t.emit();
}

/// Ablation: singleton-spread estimation method behind incentive pricing.
pub fn ablation_singleton(opts: Opts) {
    use rm_core::SingletonMethod;
    let mut t = Table::new(
        "ablation_singleton_method",
        &[
            "method",
            "pricing_time_s",
            "revenue",
            "seeding_cost",
            "seeds",
        ],
    );
    let ds = SyntheticDataset::EpinionsLike;
    let graph = std::sync::Arc::new(ds.generate(opts.scale, opts.seed));
    let tic = rm_diffusion::TicModel::weighted_cascade(&graph);
    let ads: Vec<rm_core::Advertiser> = setup::table2_terms(ds, 10, opts.scale)
        .into_iter()
        .map(|(cpe, b)| {
            rm_core::Advertiser::new(cpe, b, rm_diffusion::TopicDistribution::uniform(1))
        })
        .collect();
    let methods: Vec<(&str, SingletonMethod)> = vec![
        (
            "rr-estimate",
            SingletonMethod::RrEstimate {
                theta: graph.num_nodes() * 40,
            },
        ),
        (
            "monte-carlo",
            SingletonMethod::MonteCarlo {
                runs: if opts.quick { 100 } else { 1000 },
            },
        ),
        ("out-degree", SingletonMethod::OutDegree),
    ];
    for (name, method) in methods {
        let t0 = std::time::Instant::now();
        let inst = rm_core::RmInstance::build(
            graph.clone(),
            &tic,
            ads.clone(),
            rm_core::IncentiveModel::Linear { alpha: 0.2 },
            method,
            opts.seed,
        );
        let pricing = t0.elapsed().as_secs_f64();
        let cfg = opts.engine_cfg(quality_config(opts.seed, opts.paper_eps));
        let (alloc, _) = TiEngine::new(&inst, AlgorithmKind::TiCsrm, cfg).run();
        let eval = EvalMethod::RrSets {
            theta: eval_theta(&inst),
        };
        let report = evaluate_allocation(&inst, &alloc, eval, 5);
        t.push(vec![
            name.into(),
            fmt(pricing),
            fmt(report.total_revenue()),
            fmt(report.total_seeding_cost()),
            alloc.num_seeds().to_string(),
        ]);
    }
    t.emit();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_table_experiments_run() {
        let opts = Opts {
            scale: 0.004,
            quick: true,
            ..Default::default()
        };
        table1(opts);
        table2(opts);
        fig1(opts);
    }
}
