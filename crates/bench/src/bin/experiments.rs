//! Experiment driver: regenerates every table and figure of the paper.
//!
//! ```text
//! experiments <id> [--scale f] [--seed s] [--quick] [--paper-eps] [--paper-scale]
//!             [--selection-threads n] [--sampler-threads n]
//!
//! ids: table1 table2 table3 fig1 fig2 fig3 fig4 fig5 lt-quality tic-quality
//!      ablation-lazy ablation-term ablation-singleton ablation-opim pool-ablation
//!      quality   (fig2+fig3+fig4)
//!      scalability (fig5+table3)
//!      scale     (out-of-core snapshot tier; not part of `all`)
//!      serve     (resident-engine replay driver; not part of `all`)
//!      bench-merge (fold BENCH_*.json into one trajectory blob)
//!      all
//! ```
//!
//! `fig2`/`fig3` share one sweep (same runs, different reported metric), as
//! do `fig5`/`table3`.

use rm_bench::experiments::{self, Opts};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
        std::process::exit(2);
    }
    let mut opts = Opts::default();
    let mut ids: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                let v = it.next().expect("--scale needs a value");
                opts.scale = v.parse().expect("--scale must be a float");
            }
            "--seed" => {
                let v = it.next().expect("--seed needs a value");
                opts.seed = v.parse().expect("--seed must be an integer");
            }
            "--quick" => opts.quick = true,
            "--paper-eps" => opts.paper_eps = true,
            "--paper-scale" => opts.scale = 1.0,
            "--selection-threads" => {
                let v = it.next().expect("--selection-threads needs a value");
                opts.selection_threads = v
                    .parse()
                    .expect("--selection-threads must be an integer (0 = hardware)");
                if opts.selection_threads == 0 {
                    opts.selection_threads = usize::MAX;
                }
            }
            "--sampler-threads" => {
                let v = it.next().expect("--sampler-threads needs a value");
                opts.sampler_threads = v
                    .parse()
                    .expect("--sampler-threads must be an integer (0 = hardware)");
                if opts.sampler_threads == 0 {
                    opts.sampler_threads = usize::MAX;
                }
            }
            "--help" | "-h" => {
                usage();
                return;
            }
            id => ids.push(id.to_string()),
        }
    }
    if ids.is_empty() {
        usage();
        std::process::exit(2);
    }
    let threads = |t: usize| {
        if t == usize::MAX {
            "hw".to_string()
        } else {
            t.to_string()
        }
    };
    println!(
        "# experiments: {ids:?}  scale={} seed={} quick={} paper_eps={} selection_threads={} \
         sampler_threads={}",
        opts.scale,
        opts.seed,
        opts.quick,
        opts.paper_eps,
        threads(opts.selection_threads),
        threads(opts.sampler_threads)
    );
    for id in ids {
        run(&id, opts);
    }
}

fn run(id: &str, opts: Opts) {
    let t0 = std::time::Instant::now();
    match id {
        "table1" => experiments::table1(opts),
        "table2" => experiments::table2(opts),
        "fig1" => experiments::fig1(opts),
        "fig2" | "fig3" | "fig23" => experiments::fig2_fig3(opts),
        "fig4" => experiments::fig4(opts),
        "lt-quality" => experiments::lt_quality(opts),
        "tic-quality" => experiments::tic_quality(opts),
        "fig5" | "table3" => experiments::fig5_table3(opts),
        "ablation-lazy" => experiments::ablation_lazy(opts),
        "ablation-term" => experiments::ablation_termination(opts),
        "ablation-singleton" => experiments::ablation_singleton(opts),
        "ablation-opim" => experiments::ablation_opim(opts),
        "pool-ablation" => experiments::pool_ablation(opts),
        "quality" => {
            experiments::fig2_fig3(opts);
            experiments::fig4(opts);
        }
        "scalability" => experiments::fig5_table3(opts),
        // Not folded into `all`: the full tier is a multi-GB, half-hour-class
        // run; invoke it explicitly (CI smokes it with --quick).
        "scale" => rm_bench::scale::scale_tier(opts),
        // Likewise explicit-only: the resident-engine replay (recorded runs
        // land in BENCH_serve.json) and the benchmark-trajectory merge.
        "serve" => rm_bench::serve::serve(opts),
        "bench-merge" => rm_bench::merge::bench_merge(),
        "all" => {
            experiments::table1(opts);
            experiments::table2(opts);
            experiments::fig1(opts);
            experiments::fig2_fig3(opts);
            experiments::fig4(opts);
            experiments::lt_quality(opts);
            experiments::tic_quality(opts);
            experiments::fig5_table3(opts);
            experiments::ablation_lazy(opts);
            experiments::ablation_termination(opts);
            experiments::ablation_singleton(opts);
            experiments::ablation_opim(opts);
            experiments::pool_ablation(opts);
        }
        other => {
            eprintln!("unknown experiment id: {other}");
            usage();
            std::process::exit(2);
        }
    }
    println!("[{id}] finished in {:.1}s", t0.elapsed().as_secs_f64());
}

fn usage() {
    eprintln!(
        "usage: experiments <id>... [--scale f] [--seed s] [--quick] [--paper-eps] [--paper-scale]\n\
              [--selection-threads n] [--sampler-threads n]\n\
         ids: table1 table2 table3 fig1 fig2 fig3 fig4 fig5 lt-quality tic-quality\n\
              ablation-lazy ablation-term ablation-singleton ablation-opim\n\
              pool-ablation quality scalability scale serve bench-merge all"
    );
}
