//! Golden determinism snapshots: `experiments fig1 table2 --quick` at the
//! default seed must produce **byte-identical** CSV output across runs (and
//! across thread counts — the harness threads never touch these artifacts'
//! arithmetic, and the sampler is thread-count-invariant by construction,
//! which `tests/cross_model_consistency.rs` verifies on real batches), and
//! the `fig5 table3 --quick` scalability sweep must match its pinned
//! goldens after the volatile columns (wall time, capacity-based memory)
//! are stripped — seeds, θ and revenue are deterministic engine outputs.
//! The current output is pinned under `tests/golden/`; a diff here means a
//! determinism regression or an intentional artifact change that must
//! re-pin the goldens.

use rm_bench::experiments::{self, Opts};

/// Serializes the tests that write the shared `fig5`/`table3` artifact
/// files, so the parallel test runner cannot interleave their sweeps.
static FIG5_ARTIFACTS: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// The harness's default invocation with `--quick`.
fn quick_opts() -> Opts {
    Opts {
        quick: true,
        ..Default::default()
    }
}

fn read_artifact(name: &str) -> String {
    let path = rm_bench::report::out_dir().join(format!("{name}.csv"));
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing artifact {}: {e}", path.display()))
}

#[test]
fn fig1_and_table2_quick_match_pinned_goldens_across_runs() {
    // First run.
    experiments::fig1(quick_opts());
    experiments::table2(quick_opts());
    let fig1_a = read_artifact("fig1_tightness");
    let table2_a = read_artifact("table2_terms");

    // Second run must be byte-identical (no hidden global state, time, or
    // scheduling dependence).
    experiments::fig1(quick_opts());
    experiments::table2(quick_opts());
    assert_eq!(
        fig1_a,
        read_artifact("fig1_tightness"),
        "fig1 CSV drifted between runs"
    );
    assert_eq!(
        table2_a,
        read_artifact("table2_terms"),
        "table2 CSV drifted between runs"
    );

    // And both must match the pinned goldens bit-for-bit.
    assert_eq!(
        fig1_a,
        include_str!("golden/fig1_tightness.csv"),
        "fig1 CSV deviates from the pinned golden — re-pin only for an intentional artifact change"
    );
    assert_eq!(
        table2_a,
        include_str!("golden/table2_terms.csv"),
        "table2 CSV deviates from the pinned golden — re-pin only for an intentional artifact change"
    );
}

/// Drops the named columns from a CSV (header-addressed), keeping the rest
/// byte-exact — how the fig5/table3 snapshots exclude wall-clock and
/// allocator-capacity columns while pinning every deterministic one.
fn strip_columns(csv: &str, drop: &[&str]) -> String {
    let mut lines = csv.lines();
    let header: Vec<&str> = lines.next().expect("empty CSV").split(',').collect();
    let keep: Vec<usize> = header
        .iter()
        .enumerate()
        .filter(|(_, h)| !drop.contains(h))
        .map(|(i, _)| i)
        .collect();
    assert_eq!(
        header.len() - keep.len(),
        drop.len(),
        "a column to strip is missing from {header:?}"
    );
    let mut out = String::new();
    for line in std::iter::once(header.join(",")).chain(lines.map(str::to_string)) {
        let cells: Vec<&str> = line.split(',').collect();
        let kept: Vec<&str> = keep.iter().map(|&i| cells[i]).collect();
        out.push_str(&kept.join(","));
        out.push('\n');
    }
    out
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "runs the full quick scalability sweep twice; exercised in the release statistical CI job"
)]
fn fig5_table3_quick_match_pinned_goldens_modulo_volatile_columns() {
    let _artifacts = FIG5_ARTIFACTS.lock().unwrap_or_else(|e| e.into_inner());
    // A tiny but engine-exercising scale: 8 TiEngine runs across two
    // datasets, two algorithms, h and budget grids.
    let opts = Opts {
        quick: true,
        scale: 0.004,
        ..Default::default()
    };
    experiments::fig5_table3(opts);
    let time_h = strip_columns(&read_artifact("fig5_runtime_vs_h"), &["time_s"]);
    let time_b = strip_columns(&read_artifact("fig5_runtime_vs_budget"), &["time_s"]);
    let mem = strip_columns(&read_artifact("table3_memory_vs_h"), &["memory_gib"]);

    // Determinism across runs first: a second sweep must reproduce the
    // stripped CSVs byte-for-byte.
    experiments::fig5_table3(opts);
    assert_eq!(
        time_h,
        strip_columns(&read_artifact("fig5_runtime_vs_h"), &["time_s"]),
        "fig5 runtime-vs-h CSV drifted between runs"
    );

    // Then the pinned goldens.
    assert_eq!(
        time_h,
        include_str!("golden/fig5_runtime_vs_h.stripped.csv"),
        "fig5 runtime-vs-h deviates from the pinned golden — re-pin only for an intentional change"
    );
    assert_eq!(
        time_b,
        include_str!("golden/fig5_runtime_vs_budget.stripped.csv"),
        "fig5 runtime-vs-budget deviates from the pinned golden — re-pin only for an intentional change"
    );
    assert_eq!(
        mem,
        include_str!("golden/table3_memory_vs_h.stripped.csv"),
        "table3 memory-vs-h deviates from the pinned golden — re-pin only for an intentional change"
    );
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "runs the quick TIC quality sweep twice; exercised in the release statistical CI job"
)]
fn tic_quality_quick_matches_pinned_goldens_modulo_volatile_columns() {
    // The lazy-mixing TIC artifact gate: `tic-quality --quick --scale
    // 0.005` must reproduce its pinned revenue/seeding-cost CSVs exactly
    // (modulo wall time) — KPT pilots, stopping rules, per-edge mixture
    // draws and evaluation all run through the TIC sampler, so a diff here
    // means the TIC pipeline's arithmetic moved.
    let opts = Opts {
        quick: true,
        scale: 0.005,
        ..Default::default()
    };
    experiments::tic_quality(opts);
    let rev = strip_columns(&read_artifact("ticq_revenue_vs_alpha"), &["time_s"]);
    let cost = strip_columns(&read_artifact("ticq_seeding_cost_vs_alpha"), &["time_s"]);

    // Determinism across runs first.
    experiments::tic_quality(opts);
    assert_eq!(
        rev,
        strip_columns(&read_artifact("ticq_revenue_vs_alpha"), &["time_s"]),
        "tic-quality revenue CSV drifted between runs"
    );

    assert_eq!(
        rev,
        include_str!("golden/ticq_revenue_vs_alpha.stripped.csv"),
        "tic-quality revenue deviates from the pinned golden — re-pin only for an intentional change"
    );
    assert_eq!(
        cost,
        include_str!("golden/ticq_seeding_cost_vs_alpha.stripped.csv"),
        "tic-quality seeding-cost deviates from the pinned golden — re-pin only for an intentional change"
    );
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "runs the full quick scalability sweep twice; exercised in the release statistical CI job"
)]
fn fig5_table3_parallel_selection_matches_sequential_goldens() {
    let _artifacts = FIG5_ARTIFACTS.lock().unwrap_or_else(|e| e.into_inner());
    // The parallel-selection acceptance gate: `selection_threads > 1` (and
    // oversubscribed relative to this machine) must reproduce the pinned
    // sequential goldens bit-for-bit on the `fig5 table3 --quick` sweep —
    // the candidate fan-out and batched fixups may not move a single seed,
    // θ or revenue figure.
    for threads in [2, 8] {
        let opts = Opts {
            quick: true,
            scale: 0.004,
            selection_threads: threads,
            ..Default::default()
        };
        experiments::fig5_table3(opts);
        assert_eq!(
            strip_columns(&read_artifact("fig5_runtime_vs_h"), &["time_s"]),
            include_str!("golden/fig5_runtime_vs_h.stripped.csv"),
            "fig5 runtime-vs-h diverges from the sequential golden at selection_threads={threads}"
        );
        assert_eq!(
            strip_columns(&read_artifact("fig5_runtime_vs_budget"), &["time_s"]),
            include_str!("golden/fig5_runtime_vs_budget.stripped.csv"),
            "fig5 runtime-vs-budget diverges from the sequential golden at selection_threads={threads}"
        );
        assert_eq!(
            strip_columns(&read_artifact("table3_memory_vs_h"), &["memory_gib"]),
            include_str!("golden/table3_memory_vs_h.stripped.csv"),
            "table3 memory-vs-h diverges from the sequential golden at selection_threads={threads}"
        );
    }
}
