//! Golden determinism snapshot: `experiments fig1 table2 --quick` at the
//! default seed must produce **byte-identical** CSV output across runs (and
//! across thread counts — the harness threads never touch these artifacts'
//! arithmetic, and the sampler is thread-count-invariant by construction,
//! which `tests/cross_model_consistency.rs` verifies on real batches). The
//! current output is pinned under `tests/golden/`; a diff here means a
//! determinism regression or an intentional artifact change that must
//! re-pin the goldens.

use rm_bench::experiments::{self, Opts};

/// The harness's default invocation with `--quick`.
fn quick_opts() -> Opts {
    Opts {
        quick: true,
        ..Default::default()
    }
}

fn read_artifact(name: &str) -> String {
    let path = rm_bench::report::out_dir().join(format!("{name}.csv"));
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing artifact {}: {e}", path.display()))
}

#[test]
fn fig1_and_table2_quick_match_pinned_goldens_across_runs() {
    // First run.
    experiments::fig1(quick_opts());
    experiments::table2(quick_opts());
    let fig1_a = read_artifact("fig1_tightness");
    let table2_a = read_artifact("table2_terms");

    // Second run must be byte-identical (no hidden global state, time, or
    // scheduling dependence).
    experiments::fig1(quick_opts());
    experiments::table2(quick_opts());
    assert_eq!(
        fig1_a,
        read_artifact("fig1_tightness"),
        "fig1 CSV drifted between runs"
    );
    assert_eq!(
        table2_a,
        read_artifact("table2_terms"),
        "table2 CSV drifted between runs"
    );

    // And both must match the pinned goldens bit-for-bit.
    assert_eq!(
        fig1_a,
        include_str!("golden/fig1_tightness.csv"),
        "fig1 CSV deviates from the pinned golden — re-pin only for an intentional artifact change"
    );
    assert_eq!(
        table2_a,
        include_str!("golden/table2_terms.csv"),
        "table2 CSV deviates from the pinned golden — re-pin only for an intentional artifact change"
    );
}
