//! CLI contract tests for the `experiments` binary: an unknown experiment
//! id must exit nonzero and print the list of valid ids, so a typo'd CI
//! step fails loudly instead of green-skipping a whole artifact.

use std::process::Command;

fn experiments() -> Command {
    Command::new(env!("CARGO_BIN_EXE_experiments"))
}

#[test]
fn unknown_id_exits_nonzero_and_lists_valid_ids() {
    let out = experiments()
        .arg("no-such-experiment")
        .output()
        .expect("run experiments binary");
    assert_eq!(out.status.code(), Some(2), "unknown id must exit 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("unknown experiment id: no-such-experiment"),
        "stderr must name the offending id, got:\n{stderr}"
    );
    for id in ["table1", "fig5", "scale", "serve", "bench-merge", "all"] {
        assert!(
            stderr.contains(id),
            "usage listing must include `{id}`, got:\n{stderr}"
        );
    }
}

#[test]
fn no_arguments_exits_nonzero_with_usage() {
    let out = experiments().output().expect("run experiments binary");
    assert_eq!(out.status.code(), Some(2), "bare invocation must exit 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("usage: experiments"));
}

#[test]
fn help_exits_zero() {
    let out = experiments()
        .arg("--help")
        .output()
        .expect("run experiments binary");
    assert_eq!(out.status.code(), Some(0), "--help is not an error");
}
