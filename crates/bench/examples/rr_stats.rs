//! Reproducibility probe for the RR sampling workload (feeds BENCH_rrsets.json).
//! Parameterized via env vars N, M, BATCH; min-of-5 timing.

use rand::{rngs::SmallRng, SeedableRng};
use rm_diffusion::{TicModel, TopicDistribution};
use rm_graph::generators;

fn env(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let n = env("N", 20_000);
    let m = env("M", 160_000);
    let batch = env("BATCH", 50_000);
    let mut rng = SmallRng::seed_from_u64(42);
    let g = generators::chung_lu_directed(n, m, 2.3, &mut rng);
    let probs = TicModel::weighted_cascade(&g).ad_probs(&TopicDistribution::uniform(1));
    let mut best = std::time::Duration::MAX;
    let mut total_nodes = 0usize;
    for round in 0..5u64 {
        let t0 = std::time::Instant::now();
        let (sets, _) = rm_rrsets::sample_rr_batch(&g, &probs, batch, 7, round * batch as u64);
        best = best.min(t0.elapsed());
        total_nodes = sets.iter().map(|s| s.len()).sum();
    }
    println!(
        "n={n} m={m} batch={batch}: min {best:?}  nodes={total_nodes} (avg {:.1})  {:.1} Kset/s",
        total_nodes as f64 / batch as f64,
        batch as f64 / best.as_secs_f64() / 1e3,
    );
}
