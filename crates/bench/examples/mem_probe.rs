//! Reproducibility probe: engine-level RR memory on a small Table-3-style run
//! (feeds BENCH_rrsets.json; API-stable across the arena refactor for A/B runs).

use rm_core::{AlgorithmKind, TiEngine};
use rm_graph::SyntheticDataset;

fn main() {
    let scale: f64 = std::env::var("SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.03);
    let inst = rm_bench::setup::scalability_instance(
        SyntheticDataset::DblpLike,
        5,
        10_000.0 * scale,
        scale,
        20_170_419,
    );
    let cfg = rm_bench::setup::scalability_config(20_170_419);
    let t0 = std::time::Instant::now();
    let (alloc, stats) = TiEngine::new(&inst, AlgorithmKind::TiCsrm, cfg).run();
    println!(
        "scale={scale} n={} rr_memory_bytes={} theta_total={} seeds={} sampled={} t={:?}",
        inst.num_nodes(),
        stats.rr_memory_bytes,
        stats.total_theta(),
        alloc.num_seeds(),
        stats.rr_sets_sampled,
        t0.elapsed(),
    );
}
