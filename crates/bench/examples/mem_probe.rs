//! Reproducibility probe: engine-level RR memory and wall time on a small
//! Table-3-style run (feeds BENCH_rrsets.json; API-stable across the arena
//! and selection-round refactors for A/B runs). Knobs via env: `SCALE`
//! (default 0.03), `H` (advertisers, default 5), `BUDGET` (per-ad, default
//! 10000, scaled like the fig5 sweep), `SELECTION_THREADS` (default
//! hardware).

use rm_core::{AlgorithmKind, ScalableConfig, TiEngine};
use rm_graph::SyntheticDataset;

/// Parses `key` or falls back to `default` when unset. A set-but-malformed
/// value aborts: this probe's numbers are recorded as A/B evidence, and a
/// silently ignored knob would record wrong figures.
fn env_or<T: std::str::FromStr>(key: &str, default: T) -> T {
    match std::env::var(key) {
        Ok(v) => v
            .parse()
            .unwrap_or_else(|_| panic!("env {key}={v:?} does not parse")),
        Err(_) => default,
    }
}

fn main() {
    let scale: f64 = env_or("SCALE", 0.03);
    let h: usize = env_or("H", 5);
    // 0 = hardware parallelism, matching the experiments CLI's
    // `--selection-threads 0` convention.
    let selection_threads: usize = match env_or("SELECTION_THREADS", usize::MAX) {
        0 => usize::MAX,
        t => t,
    };
    let budget: f64 = env_or("BUDGET", 10_000.0);
    let inst = rm_bench::setup::scalability_instance(
        SyntheticDataset::DblpLike,
        h,
        budget * scale,
        scale,
        20_170_419,
    );
    let cfg = ScalableConfig {
        selection_threads,
        ..rm_bench::setup::scalability_config(20_170_419)
    };
    let t0 = std::time::Instant::now();
    let (alloc, stats) = TiEngine::new(&inst, AlgorithmKind::TiCsrm, cfg).run();
    println!(
        "scale={scale} h={h} n={} rr_memory_bytes={} theta_total={} seeds={} sampled={} rounds={} refreshes={} contended={} t={:?}",
        inst.num_nodes(),
        stats.rr_memory_bytes,
        stats.total_theta(),
        alloc.num_seeds(),
        stats.rr_sets_sampled,
        stats.rounds,
        stats.candidate_refreshes,
        stats.contended_rounds,
        t0.elapsed(),
    );
}
