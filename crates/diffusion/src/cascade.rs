//! Forward cascade simulation under ad-specific IC probabilities.
//!
//! When a node engages with an ad it gets one chance to influence each
//! out-neighbour, succeeding independently with the ad-specific edge
//! probability (Eq. 1). One simulation = one sampled cascade.

use rand::Rng;

use rm_graph::{CsrGraph, NodeId};

use crate::tic::AdProbs;

/// Reusable scratch space for cascade simulations. The visited array uses
/// epoch stamping so consecutive simulations cost O(activated), not O(n).
#[derive(Clone, Debug)]
pub struct CascadeWorkspace {
    mark: Vec<u32>,
    epoch: u32,
    queue: Vec<NodeId>,
}

impl CascadeWorkspace {
    /// Workspace for a graph with `n` nodes.
    pub fn new(n: usize) -> Self {
        CascadeWorkspace {
            mark: vec![0; n],
            epoch: 0,
            queue: Vec::new(),
        }
    }

    #[inline]
    fn begin(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Wrapped: reset stamps and restart from epoch 1.
            self.mark.fill(0);
            self.epoch = 1;
        }
        self.queue.clear();
    }

    #[inline]
    fn visit(&mut self, v: NodeId) -> bool {
        let slot = &mut self.mark[v as usize];
        if *slot == self.epoch {
            false
        } else {
            *slot = self.epoch;
            true
        }
    }
}

/// Runs one cascade from `seeds` and returns the number of activated nodes
/// (seeds included). Deterministic given the RNG state.
pub fn simulate_cascade<R: Rng + ?Sized>(
    g: &CsrGraph,
    probs: &AdProbs,
    seeds: &[NodeId],
    ws: &mut CascadeWorkspace,
    rng: &mut R,
) -> usize {
    ws.begin();
    for &s in seeds {
        if ws.visit(s) {
            ws.queue.push(s);
        }
    }
    let mut qi = 0;
    while qi < ws.queue.len() {
        let u = ws.queue[qi];
        qi += 1;
        let epoch = ws.epoch;
        for (eid, v) in g.out_edges(u) {
            if ws.mark[v as usize] == epoch {
                continue;
            }
            let p = probs.get(eid);
            if p > 0.0 && rng.random::<f32>() < p {
                ws.mark[v as usize] = epoch;
                ws.queue.push(v);
            }
        }
    }
    ws.queue.len()
}

/// Like [`simulate_cascade`] but returns the activated node set (for tests
/// and engagement-trace inspection).
pub fn simulate_cascade_nodes<R: Rng + ?Sized>(
    g: &CsrGraph,
    probs: &AdProbs,
    seeds: &[NodeId],
    ws: &mut CascadeWorkspace,
    rng: &mut R,
) -> Vec<NodeId> {
    simulate_cascade(g, probs, seeds, ws, rng);
    ws.queue.clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, SeedableRng};
    use rm_graph::builder::graph_from_edges;

    #[test]
    fn deterministic_graph_full_activation() {
        let g = graph_from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let probs = AdProbs::from_vec(vec![1.0; 3]);
        let mut ws = CascadeWorkspace::new(4);
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(simulate_cascade(&g, &probs, &[0], &mut ws, &mut rng), 4);
        assert_eq!(simulate_cascade(&g, &probs, &[2], &mut ws, &mut rng), 2);
    }

    #[test]
    fn zero_probability_activates_only_seeds() {
        let g = graph_from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let probs = AdProbs::from_vec(vec![0.0; 3]);
        let mut ws = CascadeWorkspace::new(4);
        let mut rng = SmallRng::seed_from_u64(2);
        assert_eq!(simulate_cascade(&g, &probs, &[0, 2], &mut ws, &mut rng), 2);
    }

    #[test]
    fn duplicate_seeds_counted_once() {
        let g = graph_from_edges(3, &[(0, 1)]);
        let probs = AdProbs::from_vec(vec![0.0]);
        let mut ws = CascadeWorkspace::new(3);
        let mut rng = SmallRng::seed_from_u64(3);
        assert_eq!(
            simulate_cascade(&g, &probs, &[0, 0, 0], &mut ws, &mut rng),
            1
        );
    }

    #[test]
    fn activated_nodes_form_a_superset_of_seeds() {
        let g = graph_from_edges(5, &[(0, 1), (0, 2), (1, 3), (3, 4)]);
        let probs = AdProbs::from_vec(vec![0.5; 4]);
        let mut ws = CascadeWorkspace::new(5);
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..50 {
            let nodes = simulate_cascade_nodes(&g, &probs, &[0], &mut ws, &mut rng);
            assert!(nodes.contains(&0));
            assert!(nodes.len() <= 5);
        }
    }

    #[test]
    fn workspace_reuse_is_clean() {
        let g = graph_from_edges(3, &[(0, 1), (1, 2)]);
        let probs = AdProbs::from_vec(vec![1.0, 1.0]);
        let mut ws = CascadeWorkspace::new(3);
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..1000 {
            assert_eq!(simulate_cascade(&g, &probs, &[0], &mut ws, &mut rng), 3);
        }
    }
}
