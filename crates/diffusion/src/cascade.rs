//! Forward cascade simulation under ad-specific IC probabilities.
//!
//! When a node engages with an ad it gets one chance to influence each
//! out-neighbour, succeeding independently with the ad-specific edge
//! probability (Eq. 1). One simulation = one sampled cascade.

// INVARIANT(indexing): all computed indices in this file are bounded by
// construction — node ids come from the owning CsrGraph (< num_nodes) and
// slot/offset arithmetic is derived from lengths computed in the same
// function. Bounds are exercised by the crate test suite; new indexing
// must preserve this discipline.

use rand::Rng;

use rm_graph::{CsrGraph, NodeId};

use crate::tic::{AdProbs, TicModel};
use crate::topic::TopicDistribution;

/// Reusable scratch space for cascade simulations. The visited array uses
/// epoch stamping so consecutive simulations cost O(activated), not O(n).
#[derive(Clone, Debug)]
pub struct CascadeWorkspace {
    mark: Vec<u32>,
    epoch: u32,
    queue: Vec<NodeId>,
}

impl CascadeWorkspace {
    /// Workspace for a graph with `n` nodes.
    pub fn new(n: usize) -> Self {
        CascadeWorkspace {
            mark: vec![0; n],
            epoch: 0,
            queue: Vec::new(),
        }
    }

    #[inline]
    fn begin(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Wrapped: reset stamps and restart from epoch 1.
            self.mark.fill(0);
            self.epoch = 1;
        }
        self.queue.clear();
    }

    #[inline]
    fn visit(&mut self, v: NodeId) -> bool {
        let slot = &mut self.mark[v as usize];
        if *slot == self.epoch {
            false
        } else {
            *slot = self.epoch;
            true
        }
    }
}

/// Runs one cascade from `seeds` and returns the number of activated nodes
/// (seeds included). Deterministic given the RNG state.
pub fn simulate_cascade<R: Rng + ?Sized>(
    g: &CsrGraph,
    probs: &AdProbs,
    seeds: &[NodeId],
    ws: &mut CascadeWorkspace,
    rng: &mut R,
) -> usize {
    ws.begin();
    for &s in seeds {
        if ws.visit(s) {
            ws.queue.push(s);
        }
    }
    let mut qi = 0;
    while qi < ws.queue.len() {
        let u = ws.queue[qi];
        qi += 1;
        let epoch = ws.epoch;
        for (eid, v) in g.out_edges(u) {
            if ws.mark[v as usize] == epoch {
                continue;
            }
            let p = probs.get(eid);
            if p > 0.0 && rng.random::<f32>() < p {
                ws.mark[v as usize] = epoch;
                ws.queue.push(v);
            }
        }
    }
    ws.queue.len()
}

/// Like [`simulate_cascade`] but returns the activated node set (for tests
/// and engagement-trace inspection).
pub fn simulate_cascade_nodes<R: Rng + ?Sized>(
    g: &CsrGraph,
    probs: &AdProbs,
    seeds: &[NodeId],
    ws: &mut CascadeWorkspace,
    rng: &mut R,
) -> Vec<NodeId> {
    simulate_cascade(g, probs, seeds, ws, rng);
    ws.queue.clone()
}

/// Runs one TIC cascade from `seeds`, mixing each edge's per-topic
/// probabilities with `gamma` **at traversal time** (Eq. 1) instead of
/// requiring a flattened per-ad probability array. Draws the RNG in exactly
/// the pattern of [`simulate_cascade`] over `tic.ad_probs(gamma)` — mixed
/// probabilities are bit-identical (see [`TicModel::mixed_prob`]) — so both
/// paths produce the same cascade from the same RNG state.
pub fn simulate_tic_cascade<R: Rng + ?Sized>(
    g: &CsrGraph,
    tic: &TicModel,
    gamma: &TopicDistribution,
    seeds: &[NodeId],
    ws: &mut CascadeWorkspace,
    rng: &mut R,
) -> usize {
    ws.begin();
    for &s in seeds {
        if ws.visit(s) {
            ws.queue.push(s);
        }
    }
    let mut qi = 0;
    while qi < ws.queue.len() {
        let u = ws.queue[qi];
        qi += 1;
        let epoch = ws.epoch;
        for (eid, v) in g.out_edges(u) {
            if ws.mark[v as usize] == epoch {
                continue;
            }
            let p = tic.mixed_prob(eid, gamma);
            if p > 0.0 && rng.random::<f32>() < p {
                ws.mark[v as usize] = epoch;
                ws.queue.push(v);
            }
        }
    }
    ws.queue.len()
}

/// Like [`simulate_tic_cascade`] but returns the activated node set.
pub fn simulate_tic_cascade_nodes<R: Rng + ?Sized>(
    g: &CsrGraph,
    tic: &TicModel,
    gamma: &TopicDistribution,
    seeds: &[NodeId],
    ws: &mut CascadeWorkspace,
    rng: &mut R,
) -> Vec<NodeId> {
    simulate_tic_cascade(g, tic, gamma, seeds, ws, rng);
    ws.queue.clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, SeedableRng};
    use rm_graph::builder::graph_from_edges;

    #[test]
    fn deterministic_graph_full_activation() {
        let g = graph_from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let probs = AdProbs::from_vec(vec![1.0; 3]);
        let mut ws = CascadeWorkspace::new(4);
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(simulate_cascade(&g, &probs, &[0], &mut ws, &mut rng), 4);
        assert_eq!(simulate_cascade(&g, &probs, &[2], &mut ws, &mut rng), 2);
    }

    #[test]
    fn zero_probability_activates_only_seeds() {
        let g = graph_from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let probs = AdProbs::from_vec(vec![0.0; 3]);
        let mut ws = CascadeWorkspace::new(4);
        let mut rng = SmallRng::seed_from_u64(2);
        assert_eq!(simulate_cascade(&g, &probs, &[0, 2], &mut ws, &mut rng), 2);
    }

    #[test]
    fn duplicate_seeds_counted_once() {
        let g = graph_from_edges(3, &[(0, 1)]);
        let probs = AdProbs::from_vec(vec![0.0]);
        let mut ws = CascadeWorkspace::new(3);
        let mut rng = SmallRng::seed_from_u64(3);
        assert_eq!(
            simulate_cascade(&g, &probs, &[0, 0, 0], &mut ws, &mut rng),
            1
        );
    }

    #[test]
    fn activated_nodes_form_a_superset_of_seeds() {
        let g = graph_from_edges(5, &[(0, 1), (0, 2), (1, 3), (3, 4)]);
        let probs = AdProbs::from_vec(vec![0.5; 4]);
        let mut ws = CascadeWorkspace::new(5);
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..50 {
            let nodes = simulate_cascade_nodes(&g, &probs, &[0], &mut ws, &mut rng);
            assert!(nodes.contains(&0));
            assert!(nodes.len() <= 5);
        }
    }

    #[test]
    fn tic_lazy_mixing_matches_flattened_simulation() {
        // Same RNG stream, same cascades: the lazy-mix TIC simulator must be
        // a drop-in for `simulate_cascade` over `ad_probs(gamma)`.
        use crate::topic::TopicDistribution;
        use crate::TicModel;
        let g = graph_from_edges(6, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (4, 5)]);
        let probs: Vec<f32> = (0..g.num_edges())
            .flat_map(|e| [0.9 / (e + 1) as f32, 0.2, 0.05 * e as f32])
            .collect();
        let tic = TicModel::from_matrix(&g, 3, probs);
        for gamma in [
            TopicDistribution::uniform(3),
            TopicDistribution::delta(3, 1),
            TopicDistribution::new(&[0.6, 0.1, 0.3]),
        ] {
            let flat = tic.ad_probs(&gamma);
            let mut ws_a = CascadeWorkspace::new(6);
            let mut ws_b = CascadeWorkspace::new(6);
            let mut rng_a = SmallRng::seed_from_u64(99);
            let mut rng_b = SmallRng::seed_from_u64(99);
            for _ in 0..200 {
                let mut a = simulate_tic_cascade(&g, &tic, &gamma, &[0], &mut ws_a, &mut rng_a);
                let mut b = simulate_cascade(&g, &flat, &[0], &mut ws_b, &mut rng_b);
                assert_eq!(a, b);
                a = simulate_tic_cascade_nodes(&g, &tic, &gamma, &[2], &mut ws_a, &mut rng_a).len();
                b = simulate_cascade_nodes(&g, &flat, &[2], &mut ws_b, &mut rng_b).len();
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn workspace_reuse_is_clean() {
        let g = graph_from_edges(3, &[(0, 1), (1, 2)]);
        let probs = AdProbs::from_vec(vec![1.0, 1.0]);
        let mut ws = CascadeWorkspace::new(3);
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..1000 {
            assert_eq!(simulate_cascade(&g, &probs, &[0], &mut ws, &mut rng), 3);
        }
    }
}
