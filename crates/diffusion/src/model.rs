//! The model-generic diffusion abstraction.
//!
//! The paper's TI-CSRM/TI-CARM engines are defined over *any* triggering
//! model: everything downstream of the propagation layer only needs (a) a
//! forward cascade simulator and (b) a reverse-reachable-set sampler whose
//! sets satisfy `σ(S) = n · Pr[S ∩ R ≠ ∅]`. [`DiffusionModel`] packages the
//! per-edge parameters with the model family so samplers, estimators,
//! pricing, and the engine dispatch on one value instead of forking per
//! model:
//!
//! * **Independent Cascade** ([`DiffusionModel::IndependentCascade`]): each
//!   edge fires independently with its ad-specific probability (Eq. 1's TIC
//!   flattening). The RR dual keeps each incoming edge independently.
//! * **Linear Threshold** ([`DiffusionModel::LinearThreshold`]): each node
//!   draws a uniform threshold and activates when active in-neighbour
//!   weights reach it. By Kempe et al.'s live-edge equivalence, this equals
//!   each node picking **at most one** incoming edge (edge `e` with
//!   probability `w_e`), so the RR dual is a reverse walk choosing one live
//!   in-edge per node.
//! * **Topic-aware Independent Cascade** ([`DiffusionModel::Tic`]): the
//!   paper's actual model. One shared per-topic edge table (`TicModel`)
//!   plus a per-ad topic mixture `γ`; the ad-specific probability
//!   `p^γ_{uv} = Σ_z γ_z · p^z_{uv}` (Eq. 1) is mixed **lazily** at
//!   traversal/sample time, so memory stays independent of the number of
//!   advertisers. The RR dual is IC's with the mixed probability.
//!
//! Future triggering-model variants (continuous-time, topic-LT, decay) slot
//! in as further arms of this enum plus a sampling mode in
//! `rm_rrsets::sampler`, instead of another sampler fork.

use std::sync::Arc;

use rand::Rng;

use rm_graph::{CsrGraph, NodeId};

use crate::cascade::{
    simulate_cascade, simulate_cascade_nodes, simulate_tic_cascade, simulate_tic_cascade_nodes,
    CascadeWorkspace,
};
use crate::lt::{
    lt_weights_feasible, normalize_lt_weights, simulate_lt_cascade, simulate_lt_cascade_nodes,
    singleton_spreads_lt_mc, LtWorkspace,
};
use crate::spread::{estimate_spread, singleton_spreads_mc};
use crate::tic::{AdProbs, TicModel};
use crate::topic::TopicDistribution;

/// The model family, without its parameters (what `RmInstance` records).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DiffusionKind {
    /// Independent Cascade (incl. its WC/trivalency constructions and
    /// ahead-of-time-flattened TIC).
    IndependentCascade,
    /// Linear Threshold with per-edge in-weights.
    LinearThreshold,
    /// Topic-aware Independent Cascade with lazily mixed per-ad
    /// probabilities over a shared per-topic table.
    TopicAwareCascade,
}

impl DiffusionKind {
    /// Display name used by experiment output.
    pub fn name(self) -> &'static str {
        match self {
            DiffusionKind::IndependentCascade => "IC",
            DiffusionKind::LinearThreshold => "LT",
            DiffusionKind::TopicAwareCascade => "TIC",
        }
    }
}

/// A diffusion model bound to its per-edge parameters (cheap to clone: the
/// parameter storage is `Arc`-shared).
#[derive(Clone, Debug)]
pub enum DiffusionModel {
    /// Independent Cascade with per-edge firing probabilities.
    IndependentCascade(AdProbs),
    /// Linear Threshold with per-edge in-weights. Invariant: for every node
    /// the in-weights sum to at most 1 ([`lt_weights_feasible`]); construct
    /// via [`DiffusionModel::lt`] to have infeasible weights water-filled.
    LinearThreshold(AdProbs),
    /// Topic-aware Independent Cascade: one shared per-topic edge table
    /// plus this ad's topic mixture. Edge probabilities are mixed lazily at
    /// traversal/sample time (`p^γ_{uv} = Σ_z γ_z · p^z_{uv}`,
    /// [`TicModel::mixed_prob`]) instead of materializing a flat per-ad
    /// probability array, so `h` ads over the same `TicModel` cost `h`
    /// mixtures, not `h` edge arrays.
    Tic {
        /// The shared per-topic edge-probability table.
        tic: Arc<TicModel>,
        /// This ad's topic mixture `γ`.
        gamma: TopicDistribution,
    },
}

impl DiffusionModel {
    /// An Independent Cascade model over the given edge probabilities.
    pub fn ic(probs: AdProbs) -> Self {
        DiffusionModel::IndependentCascade(probs)
    }

    /// A Linear Threshold model over the given in-weights, water-filled into
    /// feasibility per node ([`normalize_lt_weights`]). Feasible inputs are
    /// passed through without copying.
    // By-value on purpose: symmetric with `lt_prenormalized` (which does
    // consume), and callers pass freshly built AdProbs.
    #[allow(clippy::needless_pass_by_value)]
    pub fn lt(g: &CsrGraph, weights: AdProbs) -> Self {
        DiffusionModel::LinearThreshold(normalize_lt_weights(g, &weights))
    }

    /// A Linear Threshold model over weights the caller guarantees feasible
    /// (e.g. already normalized at instance construction); skips the O(n+m)
    /// water-fill scan. Debug builds verify the invariant.
    pub fn lt_prenormalized(g: &CsrGraph, weights: AdProbs) -> Self {
        debug_assert!(
            lt_weights_feasible(g, &weights),
            "lt_prenormalized requires feasible in-weights"
        );
        DiffusionModel::LinearThreshold(weights)
    }

    /// A Topic-aware Independent Cascade model: the shared per-topic table
    /// plus one ad's topic mixture, mixed lazily at traversal time.
    ///
    /// # Panics
    /// Panics if the mixture's topic count differs from the table's.
    pub fn tic(tic: Arc<TicModel>, gamma: TopicDistribution) -> Self {
        assert_eq!(
            gamma.num_topics(),
            tic.num_topics(),
            "ad topic count mismatch"
        );
        DiffusionModel::Tic { tic, gamma }
    }

    /// Binds `params` to a model family: IC passes probabilities through,
    /// LT water-fills them into feasible in-weights.
    ///
    /// # Panics
    /// Panics for [`DiffusionKind::TopicAwareCascade`]: a TIC model carries
    /// a per-topic table and a mixture, not flat per-edge parameters —
    /// construct it via [`DiffusionModel::tic`].
    pub fn from_kind(kind: DiffusionKind, g: &CsrGraph, params: AdProbs) -> Self {
        match kind {
            DiffusionKind::IndependentCascade => DiffusionModel::ic(params),
            DiffusionKind::LinearThreshold => DiffusionModel::lt(g, params),
            DiffusionKind::TopicAwareCascade => panic!(
                "TIC models are not defined by flat per-edge parameters; \
                 construct via DiffusionModel::tic"
            ),
        }
    }

    /// Which family this model belongs to.
    pub fn kind(&self) -> DiffusionKind {
        match self {
            DiffusionModel::IndependentCascade(_) => DiffusionKind::IndependentCascade,
            DiffusionModel::LinearThreshold(_) => DiffusionKind::LinearThreshold,
            DiffusionModel::Tic { .. } => DiffusionKind::TopicAwareCascade,
        }
    }

    /// The per-edge parameters (IC probabilities or LT in-weights), indexed
    /// by canonical edge id.
    ///
    /// # Panics
    /// Panics for TIC models, which deliberately never materialize a flat
    /// per-edge array — use [`Self::tic_parts`] (lazy mixing) or
    /// [`Self::flatten_probs`] (explicit O(m) flattening) instead.
    pub fn params(&self) -> &AdProbs {
        match self {
            DiffusionModel::IndependentCascade(p) | DiffusionModel::LinearThreshold(p) => p,
            DiffusionModel::Tic { .. } => panic!(
                "TIC models mix probabilities lazily and have no flat params; \
                 use tic_parts() or flatten_probs()"
            ),
        }
    }

    /// The shared table and mixture of a TIC model, `None` for IC/LT.
    pub fn tic_parts(&self) -> Option<(&Arc<TicModel>, &TopicDistribution)> {
        match self {
            DiffusionModel::Tic { tic, gamma } => Some((tic, gamma)),
            _ => None,
        }
    }

    /// The per-edge parameters as an owned handle, flattening a TIC model's
    /// mixture into a transient O(m) array (Eq. 1). IC/LT hand back their
    /// shared storage without copying. Use only off the sampling path — the
    /// point of the TIC variant is that samplers never need this array.
    pub fn flatten_probs(&self) -> AdProbs {
        match self {
            DiffusionModel::IndependentCascade(p) | DiffusionModel::LinearThreshold(p) => p.clone(),
            DiffusionModel::Tic { tic, gamma } => tic.ad_probs(gamma),
        }
    }

    /// A forward-simulation workspace matching this model's family.
    pub fn workspace(&self, n: usize) -> ModelWorkspace {
        match self {
            DiffusionModel::IndependentCascade(_) | DiffusionModel::Tic { .. } => {
                ModelWorkspace::Ic(CascadeWorkspace::new(n))
            }
            DiffusionModel::LinearThreshold(_) => ModelWorkspace::Lt(LtWorkspace::new(n)),
        }
    }

    /// Runs one forward cascade from `seeds`, returning the number of
    /// activated nodes (seeds included).
    ///
    /// Infallible by contract: a workspace built for the other model family
    /// is transparently re-initialized to the matching one (see
    /// [`ModelWorkspace`]), so no input combination can panic. Callers that
    /// alternate models over one workspace pay a reallocation per switch —
    /// keep one workspace per model in hot loops.
    pub fn simulate<R: Rng + ?Sized>(
        &self,
        g: &CsrGraph,
        seeds: &[NodeId],
        ws: &mut ModelWorkspace,
        rng: &mut R,
    ) -> usize {
        match self {
            DiffusionModel::IndependentCascade(p) => {
                simulate_cascade(g, p, seeds, ws.ic_mut(g.num_nodes()), rng)
            }
            DiffusionModel::LinearThreshold(w) => {
                simulate_lt_cascade(g, w, seeds, ws.lt_mut(g.num_nodes()), rng)
            }
            DiffusionModel::Tic { tic, gamma } => {
                simulate_tic_cascade(g, tic, gamma, seeds, ws.ic_mut(g.num_nodes()), rng)
            }
        }
    }

    /// Like [`Self::simulate`] but returns the activated node set. Shares
    /// [`Self::simulate`]'s infallible workspace contract.
    pub fn simulate_nodes<R: Rng + ?Sized>(
        &self,
        g: &CsrGraph,
        seeds: &[NodeId],
        ws: &mut ModelWorkspace,
        rng: &mut R,
    ) -> Vec<NodeId> {
        match self {
            DiffusionModel::IndependentCascade(p) => {
                simulate_cascade_nodes(g, p, seeds, ws.ic_mut(g.num_nodes()), rng)
            }
            DiffusionModel::LinearThreshold(w) => {
                simulate_lt_cascade_nodes(g, w, seeds, ws.lt_mut(g.num_nodes()), rng)
            }
            DiffusionModel::Tic { tic, gamma } => {
                simulate_tic_cascade_nodes(g, tic, gamma, seeds, ws.ic_mut(g.num_nodes()), rng)
            }
        }
    }

    /// Estimates the expected spread `σ(seeds)` with `runs` Monte-Carlo
    /// simulations. Deterministic in `seed`.
    pub fn estimate_spread(&self, g: &CsrGraph, seeds: &[NodeId], runs: usize, seed: u64) -> f64 {
        match self {
            DiffusionModel::IndependentCascade(p) => {
                estimate_spread(g, p, seeds, runs, seed).spread
            }
            DiffusionModel::LinearThreshold(w) => {
                crate::lt::estimate_lt_spread(g, w, seeds, runs, seed)
            }
            // One transient O(m) flatten per estimate call amortized over
            // `runs` simulations; mixing is bit-identical to the lazy path
            // (`TicModel::mixed_prob`), so the estimate distribution is too.
            DiffusionModel::Tic { tic, gamma } => {
                estimate_spread(g, &tic.ad_probs(gamma), seeds, runs, seed).spread
            }
        }
    }

    /// Estimates the singleton spread of **every** node with `runs`
    /// Monte-Carlo simulations each (the incentive-pricing input).
    pub fn singleton_spreads_mc(&self, g: &CsrGraph, runs: usize, seed: u64) -> Vec<f64> {
        match self {
            DiffusionModel::IndependentCascade(p) => singleton_spreads_mc(g, p, runs, seed),
            DiffusionModel::LinearThreshold(w) => singleton_spreads_lt_mc(g, w, runs, seed),
            DiffusionModel::Tic { tic, gamma } => {
                singleton_spreads_mc(g, &tic.ad_probs(gamma), runs, seed)
            }
        }
    }
}

/// Forward-simulation scratch matching one model family; obtain via
/// [`DiffusionModel::workspace`].
///
/// Simulation entry points self-heal a family mismatch: handing an LT
/// workspace to an IC simulation (or vice versa) re-initializes it in place
/// instead of panicking, so [`DiffusionModel::simulate`] /
/// [`DiffusionModel::simulate_nodes`] are infallible for every input. The
/// swap reallocates the scratch, so it is a performance consideration, not
/// a correctness one.
#[derive(Clone, Debug)]
pub enum ModelWorkspace {
    /// Independent-Cascade scratch.
    Ic(CascadeWorkspace),
    /// Linear-Threshold scratch.
    Lt(LtWorkspace),
}

impl ModelWorkspace {
    /// The IC scratch, re-initializing in place on a family mismatch.
    fn ic_mut(&mut self, n: usize) -> &mut CascadeWorkspace {
        if !matches!(self, ModelWorkspace::Ic(_)) {
            *self = ModelWorkspace::Ic(CascadeWorkspace::new(n));
        }
        let ModelWorkspace::Ic(ws) = self else {
            unreachable!("just normalized to the IC variant")
        };
        ws
    }

    /// The LT scratch, re-initializing in place on a family mismatch.
    fn lt_mut(&mut self, n: usize) -> &mut LtWorkspace {
        if !matches!(self, ModelWorkspace::Lt(_)) {
            *self = ModelWorkspace::Lt(LtWorkspace::new(n));
        }
        let ModelWorkspace::Lt(ws) = self else {
            unreachable!("just normalized to the LT variant")
        };
        ws
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, SeedableRng};
    use rm_graph::builder::graph_from_edges;

    fn chain() -> CsrGraph {
        graph_from_edges(4, &[(0, 1), (1, 2), (2, 3)])
    }

    #[test]
    fn kinds_and_params_round_trip() {
        let g = chain();
        let probs = AdProbs::from_vec(vec![0.5; 3]);
        let ic = DiffusionModel::ic(probs.clone());
        assert_eq!(ic.kind(), DiffusionKind::IndependentCascade);
        assert!(ic.params().shares_storage(&probs));
        let lt = DiffusionModel::lt(&g, probs.clone());
        assert_eq!(lt.kind(), DiffusionKind::LinearThreshold);
        // Feasible weights pass through unchanged.
        assert!(lt.params().shares_storage(&probs));
        assert_eq!(DiffusionKind::LinearThreshold.name(), "LT");
    }

    #[test]
    fn lt_constructor_waterfills() {
        // Node 2's in-weights sum to 1.8; `lt` must normalize them.
        let g = graph_from_edges(3, &[(0, 2), (1, 2)]);
        let w = AdProbs::from_vec(vec![0.9, 0.9]);
        let lt = DiffusionModel::lt(&g, w);
        assert!(lt_weights_feasible(&g, lt.params()));
        assert!((lt.params().get(0) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn both_models_simulate_deterministic_chain() {
        let g = chain();
        let full = AdProbs::from_vec(vec![1.0; 3]);
        for model in [
            DiffusionModel::ic(full.clone()),
            DiffusionModel::lt(&g, full.clone()),
        ] {
            let mut ws = model.workspace(4);
            let mut rng = SmallRng::seed_from_u64(1);
            assert_eq!(model.simulate(&g, &[0], &mut ws, &mut rng), 4);
            let mut nodes = model.simulate_nodes(&g, &[2], &mut ws, &mut rng);
            nodes.sort_unstable();
            assert_eq!(nodes, vec![2, 3]);
            assert_eq!(model.estimate_spread(&g, &[1], 50, 2), 3.0);
            assert_eq!(
                model.singleton_spreads_mc(&g, 20, 3),
                vec![4.0, 3.0, 2.0, 1.0]
            );
        }
    }

    #[test]
    fn tic_variant_dispatches_and_matches_flat_ic() {
        let g = chain();
        let probs: Vec<f32> = (0..3).flat_map(|_| [0.9, 0.1]).collect();
        let tic = Arc::new(TicModel::from_matrix(&g, 2, probs));
        let gamma = TopicDistribution::new(&[0.7, 0.3]);
        let model = DiffusionModel::tic(Arc::clone(&tic), gamma.clone());
        assert_eq!(model.kind(), DiffusionKind::TopicAwareCascade);
        assert_eq!(model.kind().name(), "TIC");
        let (t, gm) = model.tic_parts().expect("TIC parts");
        assert!(Arc::ptr_eq(t, &tic));
        assert_eq!(gm, &gamma);

        // Every estimator agrees with the flat-IC model over ad_probs.
        let flat = DiffusionModel::ic(tic.ad_probs(&gamma));
        assert!(flat.tic_parts().is_none());
        assert_eq!(
            model.estimate_spread(&g, &[0], 300, 17),
            flat.estimate_spread(&g, &[0], 300, 17)
        );
        assert_eq!(
            model.singleton_spreads_mc(&g, 50, 5),
            flat.singleton_spreads_mc(&g, 50, 5)
        );
        let mut ws_a = model.workspace(4);
        let mut ws_b = flat.workspace(4);
        assert!(matches!(ws_a, ModelWorkspace::Ic(_)));
        let mut rng_a = SmallRng::seed_from_u64(8);
        let mut rng_b = SmallRng::seed_from_u64(8);
        for _ in 0..100 {
            assert_eq!(
                model.simulate(&g, &[0], &mut ws_a, &mut rng_a),
                flat.simulate(&g, &[0], &mut ws_b, &mut rng_b)
            );
        }
        assert_eq!(
            model.flatten_probs().as_slice(),
            tic.ad_probs(&gamma).as_slice()
        );
    }

    #[test]
    #[should_panic(expected = "no flat params")]
    fn tic_params_panics_with_guidance() {
        let g = chain();
        let tic = Arc::new(TicModel::uniform(&g, 0.5));
        let model = DiffusionModel::tic(tic, TopicDistribution::uniform(1));
        let _ = model.params();
    }

    #[test]
    #[should_panic(expected = "topic count mismatch")]
    fn tic_constructor_rejects_mismatched_mixture() {
        let g = chain();
        let tic = Arc::new(TicModel::uniform(&g, 0.5));
        let _ = DiffusionModel::tic(tic, TopicDistribution::uniform(3));
    }

    #[test]
    fn mismatched_workspace_self_heals() {
        // Regression: model-family mismatch used to panic mid-simulation.
        // The contract is now infallible — a mismatched workspace is
        // re-initialized in place and the simulation proceeds, returning
        // exactly what a correctly built workspace returns.
        let g = chain();
        let ic = DiffusionModel::ic(AdProbs::from_vec(vec![1.0; 3]));
        let lt = DiffusionModel::lt(&g, AdProbs::from_vec(vec![1.0; 3]));
        let mut wrong = lt.workspace(4);
        let mut right = ic.workspace(4);
        let mut rng_a = SmallRng::seed_from_u64(4);
        let mut rng_b = SmallRng::seed_from_u64(4);
        assert_eq!(
            ic.simulate(&g, &[0], &mut wrong, &mut rng_a),
            ic.simulate(&g, &[0], &mut right, &mut rng_b),
        );
        // The workspace was swapped to the IC family in place…
        assert!(matches!(wrong, ModelWorkspace::Ic(_)));
        // …and the other direction heals too, node sets included.
        let mut nodes = lt.simulate_nodes(&g, &[2], &mut wrong, &mut rng_a);
        nodes.sort_unstable();
        assert_eq!(nodes, vec![2, 3]);
        assert!(matches!(wrong, ModelWorkspace::Lt(_)));
    }
}
