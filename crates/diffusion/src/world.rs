//! Possible-world (live-edge) semantics.
//!
//! Under IC/TIC, a cascade is equivalent to first sampling a deterministic
//! subgraph ("possible world") where each edge is live independently with its
//! ad-specific probability, then taking forward reachability from the seeds.
//! This equivalence powers the RR-set estimators; here we expose it directly
//! plus an exponential-time exact spread oracle for tiny graphs used to
//! validate every estimator in the workspace.

use rand::Rng;

use rm_graph::{CsrGraph, NodeId};

use crate::tic::AdProbs;

/// Samples a possible world: `live[eid]` is true iff the edge survived.
pub fn sample_world<R: Rng + ?Sized>(g: &CsrGraph, probs: &AdProbs, rng: &mut R) -> Vec<bool> {
    (0..g.num_edges() as u32)
        .map(|e| rng.random::<f32>() < probs.get(e))
        .collect()
}

/// Number of nodes forward-reachable from `seeds` through live edges.
pub fn reachable_count(g: &CsrGraph, live: &[bool], seeds: &[NodeId]) -> usize {
    assert_eq!(live.len(), g.num_edges());
    let mut visited = vec![false; g.num_nodes()];
    let mut queue: Vec<NodeId> = Vec::new();
    for &s in seeds {
        if !visited[s as usize] {
            visited[s as usize] = true;
            queue.push(s);
        }
    }
    let mut qi = 0;
    while qi < queue.len() {
        let u = queue[qi];
        qi += 1;
        for (eid, v) in g.out_edges(u) {
            if live[eid as usize] && !visited[v as usize] {
                visited[v as usize] = true;
                queue.push(v);
            }
        }
    }
    queue.len()
}

/// **Exact** expected spread by enumerating all `2^m` possible worlds.
/// Usable only on tiny graphs (`m <= 20` or so); this is the ground-truth
/// oracle for estimator tests and the Figure 1 gadget.
///
/// # Panics
/// Panics if the graph has more than 24 edges.
pub fn exact_spread_enumeration(g: &CsrGraph, probs: &AdProbs, seeds: &[NodeId]) -> f64 {
    let m = g.num_edges();
    assert!(m <= 24, "exact enumeration is exponential; got {m} edges");
    if seeds.is_empty() {
        return 0.0;
    }
    let mut total = 0.0f64;
    let mut live = vec![false; m];
    for mask in 0u32..(1u32 << m) {
        let mut pw = 1.0f64;
        for (e, slot) in live.iter_mut().enumerate() {
            let p = probs.get(e as u32) as f64;
            if mask >> e & 1 == 1 {
                *slot = true;
                pw *= p;
            } else {
                *slot = false;
                pw *= 1.0 - p;
            }
            if pw == 0.0 {
                break;
            }
        }
        if pw > 0.0 {
            total += pw * reachable_count(g, &live, seeds) as f64;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spread::estimate_spread;
    use rand::{rngs::SmallRng, SeedableRng};
    use rm_graph::builder::graph_from_edges;

    #[test]
    fn exact_matches_closed_form_on_chain() {
        let g = graph_from_edges(3, &[(0, 1), (1, 2)]);
        let probs = AdProbs::from_vec(vec![0.5, 0.25]);
        let exact = exact_spread_enumeration(&g, &probs, &[0]);
        assert!((exact - (1.0 + 0.5 + 0.5 * 0.25)).abs() < 1e-12);
    }

    #[test]
    fn exact_handles_converging_paths() {
        // Diamond: 0->1, 0->2, 1->3, 2->3, all p=0.5.
        // P(3 active) = 1 - (1 - 0.25)^2 = 0.4375.
        let g = graph_from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let probs = AdProbs::from_vec(vec![0.5; 4]);
        let exact = exact_spread_enumeration(&g, &probs, &[0]);
        assert!((exact - (1.0 + 0.5 + 0.5 + 0.4375)).abs() < 1e-12);
    }

    #[test]
    fn mc_converges_to_exact() {
        let g = graph_from_edges(5, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]);
        let probs = AdProbs::from_vec(vec![0.4, 0.6, 0.5, 0.3, 0.7]);
        let exact = exact_spread_enumeration(&g, &probs, &[0]);
        let mc = estimate_spread(&g, &probs, &[0], 100_000, 99).spread;
        assert!((exact - mc).abs() < 0.03, "exact {exact}, MC {mc}");
    }

    #[test]
    fn world_reachability_is_monotone_in_liveness() {
        let g = graph_from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let none = vec![false; 3];
        let all = vec![true; 3];
        assert_eq!(reachable_count(&g, &none, &[0]), 1);
        assert_eq!(reachable_count(&g, &all, &[0]), 4);
    }

    #[test]
    fn sampled_world_liveness_rate() {
        let g = graph_from_edges(2, &[(0, 1)]);
        let probs = AdProbs::from_vec(vec![0.3]);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut live_count = 0;
        for _ in 0..10_000 {
            if sample_world(&g, &probs, &mut rng)[0] {
                live_count += 1;
            }
        }
        let rate = live_count as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }
}
