//! # rm-diffusion — topic-aware influence propagation
//!
//! Implements the paper's propagation stack (§2):
//!
//! * a **topic model**: each ad `i` is a distribution `γ_i` over `L` latent
//!   topics ([`TopicDistribution`]);
//! * the **Topic-aware Independent Cascade (TIC)** model of Barbieri et al.:
//!   every edge `(u,v)` carries per-topic probabilities `p^z_{u,v}`, and an
//!   ad-specific edge probability is the mixture
//!   `p^i_{u,v} = Σ_z γ^z_i · p^z_{u,v}` (Eq. 1, [`TicModel::ad_probs`]);
//! * forward **Monte-Carlo cascade simulation** and (parallel) expected-spread
//!   estimation, used for seed-incentive computation and as ground truth for
//!   the RR-set estimators;
//! * **possible-world** utilities including exact spread computation by
//!   world enumeration on tiny graphs (test oracle).
//!
//! With `L = 1` the TIC model degenerates to the standard IC model, exactly
//! as the paper notes (footnote 7); the Weighted-Cascade and trivalency
//! constructors build such single-topic instances.
//!
//! Beyond the paper, [`model::DiffusionModel`] abstracts the propagation
//! family itself (Independent Cascade vs Linear Threshold vs lazy-mixing
//! TIC), so the RR-set machinery, pricing, and the scalable engine are
//! model-generic. The [`DiffusionModel::Tic`] variant keeps **one** shared
//! per-topic table ([`TicModel`], in-slot-gathered as [`TicInSlots`]) and
//! mixes each ad's probabilities at sample time, so per-ad memory is a
//! topic mixture, not an edge array.

#![forbid(unsafe_code)]

pub mod cascade;
pub mod lt;
pub mod model;
pub mod spread;
pub mod tic;
pub mod topic;
pub mod world;

pub use cascade::{simulate_cascade, simulate_tic_cascade, CascadeWorkspace};
pub use lt::{
    estimate_lt_spread, lt_weights_feasible, normalize_lt_weights, sample_lt_rr_set,
    simulate_lt_cascade, LtWorkspace,
};
pub use model::{DiffusionKind, DiffusionModel, ModelWorkspace};
pub use spread::{estimate_spread, singleton_spreads_mc, SpreadEstimate};
pub use tic::{AdProbs, TicInSlots, TicModel, TopicalConfig};
pub use topic::TopicDistribution;
