//! Linear Threshold (LT) propagation — an extension beyond the paper.
//!
//! The paper's framework only requires the spread function to be monotone
//! and submodular; Kempe et al. prove LT satisfies both, so every RM
//! algorithm in this workspace applies unchanged if engagements propagate by
//! thresholds rather than independent coin flips. This module provides the
//! forward simulator and the LT live-edge ("one incoming edge per node")
//! sampler, which makes the same RR-set machinery valid under LT.

use rand::Rng;

use rm_graph::{CsrGraph, NodeId};

use crate::cascade::CascadeWorkspace;
use crate::tic::AdProbs;

/// Validates LT weight feasibility: for every node, incoming weights must
/// sum to at most 1 (weights are read from the per-edge array, so the
/// Weighted-Cascade construction `1/indeg(v)` is exactly LT-feasible).
pub fn lt_weights_feasible(g: &CsrGraph, weights: &AdProbs) -> bool {
    (0..g.num_nodes() as NodeId).all(|v| {
        let total: f64 = g.in_edges(v).map(|(e, _)| weights.get(e) as f64).sum();
        total <= 1.0 + 1e-6
    })
}

/// One LT cascade: every node draws a uniform threshold; a node activates
/// when the weight sum of its active in-neighbours reaches its threshold.
/// Returns the number of active nodes (seeds included).
pub fn simulate_lt_cascade<R: Rng + ?Sized>(
    g: &CsrGraph,
    weights: &AdProbs,
    seeds: &[NodeId],
    ws: &mut CascadeWorkspace,
    rng: &mut R,
) -> usize {
    let n = g.num_nodes();
    // Thresholds are sampled lazily: a node's threshold is fixed at first
    // exposure, stored in `pressure` as (threshold - accumulated weight).
    let mut remaining: Vec<f32> = vec![f32::NAN; n];
    let _ = ws; // workspace kept for signature symmetry with IC
    let mut active = vec![false; n];
    let mut queue: Vec<NodeId> = Vec::new();
    for &s in seeds {
        if !active[s as usize] {
            active[s as usize] = true;
            queue.push(s);
        }
    }
    let mut qi = 0;
    while qi < queue.len() {
        let u = queue[qi];
        qi += 1;
        for (eid, v) in g.out_edges(u) {
            if active[v as usize] {
                continue;
            }
            let slot = &mut remaining[v as usize];
            if slot.is_nan() {
                *slot = rng.random::<f32>();
            }
            *slot -= weights.get(eid);
            if *slot <= 0.0 {
                active[v as usize] = true;
                queue.push(v);
            }
        }
    }
    queue.len()
}

/// Estimates the LT expected spread with `runs` simulations.
pub fn estimate_lt_spread(
    g: &CsrGraph,
    weights: &AdProbs,
    seeds: &[NodeId],
    runs: usize,
    seed: u64,
) -> f64 {
    use rand::SeedableRng;
    if seeds.is_empty() || runs == 0 {
        return 0.0;
    }
    let mut ws = CascadeWorkspace::new(g.num_nodes());
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
    let mut total = 0usize;
    for _ in 0..runs {
        total += simulate_lt_cascade(g, weights, seeds, &mut ws, &mut rng);
    }
    total as f64 / runs as f64
}

/// Samples one LT reverse-reachable set: walking backwards, each node picks
/// **at most one** incoming edge (edge `e` with probability `w_e`, no edge
/// with probability `1 − Σ w`), per Kempe et al.'s live-edge model for LT.
pub fn sample_lt_rr_set<R: Rng + ?Sized>(
    g: &CsrGraph,
    weights: &AdProbs,
    rng: &mut R,
    out: &mut Vec<NodeId>,
) {
    out.clear();
    let n = g.num_nodes();
    if n == 0 {
        return;
    }
    let root = rng.random_range(0..n) as NodeId;
    out.push(root);
    let mut seen = std::collections::HashSet::new();
    seen.insert(root);
    let mut cur = root;
    loop {
        // Pick at most one in-edge of `cur` with probability proportional to
        // its weight (residual mass = stop).
        let mut x: f64 = rng.random();
        let mut picked: Option<NodeId> = None;
        for (eid, u) in g.in_edges(cur) {
            x -= weights.get(eid) as f64;
            if x < 0.0 {
                picked = Some(u);
                break;
            }
        }
        match picked {
            Some(u) if !seen.contains(&u) => {
                seen.insert(u);
                out.push(u);
                cur = u;
            }
            _ => break, // stopped, or walked into a cycle
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, SeedableRng};
    use rm_diffusion_test_helpers::*;
    use rm_graph::builder::graph_from_edges;

    mod rm_diffusion_test_helpers {
        pub use crate::tic::TicModel;
        pub use crate::topic::TopicDistribution;
    }

    #[test]
    fn wc_weights_are_lt_feasible() {
        let g = graph_from_edges(5, &[(0, 1), (2, 1), (3, 1), (1, 4), (0, 4)]);
        let w = TicModel::weighted_cascade(&g).ad_probs(&TopicDistribution::uniform(1));
        assert!(lt_weights_feasible(&g, &w));
    }

    #[test]
    fn full_weight_chain_always_activates() {
        let g = graph_from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let w = AdProbs::from_vec(vec![1.0; 3]);
        let spread = estimate_lt_spread(&g, &w, &[0], 200, 3);
        assert!((spread - 4.0).abs() < 1e-12);
    }

    #[test]
    fn lt_two_parents_probability() {
        // v has two in-edges with weight 0.5 each. With one active parent,
        // P(v active) = 0.5 (threshold uniform). Seeds = {0}.
        let g = graph_from_edges(3, &[(0, 2), (1, 2)]);
        let w = AdProbs::from_vec(vec![0.5, 0.5]);
        let spread = estimate_lt_spread(&g, &w, &[0], 60_000, 7);
        assert!((spread - 1.5).abs() < 0.02, "spread {spread}");
        // Both parents active: v activates surely.
        let spread2 = estimate_lt_spread(&g, &w, &[0, 1], 5_000, 8);
        assert!((spread2 - 3.0).abs() < 1e-9);
    }

    #[test]
    fn lt_rr_sets_estimate_singleton_spread() {
        // σ_LT({u}) = n · Pr[u ∈ RR]. Chain with weight 1.
        let g = graph_from_edges(3, &[(0, 1), (1, 2)]);
        let w = AdProbs::from_vec(vec![1.0, 1.0]);
        let mut rng = SmallRng::seed_from_u64(4);
        let theta = 30_000;
        let mut hits0 = 0;
        let mut out = Vec::new();
        for _ in 0..theta {
            sample_lt_rr_set(&g, &w, &mut rng, &mut out);
            if out.contains(&0) {
                hits0 += 1;
            }
        }
        let est = 3.0 * hits0 as f64 / theta as f64;
        assert!((est - 3.0).abs() < 0.05, "est {est}");
    }

    #[test]
    fn lt_rr_matches_forward_simulation() {
        let g = graph_from_edges(4, &[(0, 1), (2, 1), (1, 3), (0, 3)]);
        let w = AdProbs::from_vec(vec![0.4, 0.4, 0.3, 0.3]);
        assert!(lt_weights_feasible(&g, &w));
        let forward = estimate_lt_spread(&g, &w, &[0], 80_000, 5);
        let mut rng = SmallRng::seed_from_u64(6);
        let theta = 80_000;
        let mut hits = 0;
        let mut out = Vec::new();
        for _ in 0..theta {
            sample_lt_rr_set(&g, &w, &mut rng, &mut out);
            if out.contains(&0) {
                hits += 1;
            }
        }
        let reverse = 4.0 * hits as f64 / theta as f64;
        assert!(
            (forward - reverse).abs() < 0.05,
            "forward {forward} vs reverse {reverse}"
        );
    }
}
