//! Linear Threshold (LT) propagation — an extension beyond the paper.
//!
//! The paper's framework only requires the spread function to be monotone
//! and submodular; Kempe et al. prove LT satisfies both, so every RM
//! algorithm in this workspace applies unchanged if engagements propagate by
//! thresholds rather than independent coin flips. This module provides the
//! forward simulator and the LT live-edge ("one incoming edge per node")
//! sampler, which makes the same RR-set machinery valid under LT.
//!
//! Feasible LT in-weights must sum to at most 1 per node. Weight vectors
//! derived from IC-style edge probabilities (uniform, trivalency, topical
//! mixtures) routinely violate that on high-in-degree nodes;
//! [`normalize_lt_weights`] water-fills them back into the simplex at
//! construction time so samplers never have to reject.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use rm_graph::{CsrGraph, NodeId};

use crate::tic::AdProbs;

/// Validates LT weight feasibility: for every node, incoming weights must
/// sum to at most 1 (weights are read from the per-edge array, so the
/// Weighted-Cascade construction `1/indeg(v)` is exactly LT-feasible).
pub fn lt_weights_feasible(g: &CsrGraph, weights: &AdProbs) -> bool {
    (0..g.num_nodes() as NodeId).all(|v| {
        let total: f64 = g.in_edges(v).map(|(e, _)| weights.get(e) as f64).sum();
        total <= 1.0 + 1e-6
    })
}

/// Water-fills per-edge weights into LT feasibility: any node whose incoming
/// weights sum to `s > 1` has them scaled by `1/s`, preserving their
/// proportions; already-feasible nodes are left untouched bit-for-bit.
///
/// Synthetic weight assignments (uniform-p, trivalency, topical TIC
/// mixtures) exceed the simplex exactly on high-in-degree hubs — the nodes
/// power-law generators always produce — so LT instances normalize at
/// construction instead of rejecting at sample time. The result always
/// passes [`lt_weights_feasible`]: the per-weight f32 rounding error is
/// relative (≤ 2⁻²⁴ per term), far inside the feasibility slack.
pub fn normalize_lt_weights(g: &CsrGraph, weights: &AdProbs) -> AdProbs {
    let mut out: Vec<f32> = weights.as_slice().to_vec();
    let mut changed = false;
    for v in 0..g.num_nodes() as NodeId {
        let total: f64 = g.in_edges(v).map(|(e, _)| weights.get(e) as f64).sum();
        if total > 1.0 {
            let scale = 1.0 / total;
            for (e, _) in g.in_edges(v) {
                out[e as usize] = (f64::from(out[e as usize]) * scale) as f32;
            }
            changed = true;
        }
    }
    if changed {
        AdProbs::from_vec(out)
    } else {
        weights.clone()
    }
}

/// Reusable scratch for LT cascade simulation: epoch-stamped activation
/// marks plus lazily drawn thresholds, so consecutive simulations cost
/// O(touched), not O(n).
#[derive(Clone, Debug)]
pub struct LtWorkspace {
    /// Activation epoch stamps.
    active: Vec<u32>,
    /// Epoch stamps marking nodes whose threshold has been drawn.
    drawn: Vec<u32>,
    /// `threshold − accumulated in-weight`, valid while `drawn` is current.
    remaining: Vec<f32>,
    epoch: u32,
    queue: Vec<NodeId>,
}

impl LtWorkspace {
    /// Workspace for a graph with `n` nodes.
    pub fn new(n: usize) -> Self {
        LtWorkspace {
            active: vec![0; n],
            drawn: vec![0; n],
            remaining: vec![0.0; n],
            epoch: 0,
            queue: Vec::new(),
        }
    }

    #[inline]
    fn begin(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.active.fill(0);
            self.drawn.fill(0);
            self.epoch = 1;
        }
        self.queue.clear();
    }
}

/// One LT cascade: every node draws a uniform threshold at first exposure; a
/// node activates when the weight sum of its active in-neighbours reaches
/// its threshold. Returns the number of active nodes (seeds included).
pub fn simulate_lt_cascade<R: Rng + ?Sized>(
    g: &CsrGraph,
    weights: &AdProbs,
    seeds: &[NodeId],
    ws: &mut LtWorkspace,
    rng: &mut R,
) -> usize {
    ws.begin();
    for &s in seeds {
        if ws.active[s as usize] != ws.epoch {
            ws.active[s as usize] = ws.epoch;
            ws.queue.push(s);
        }
    }
    let mut qi = 0;
    while qi < ws.queue.len() {
        let u = ws.queue[qi];
        qi += 1;
        for (eid, v) in g.out_edges(u) {
            if ws.active[v as usize] == ws.epoch {
                continue;
            }
            if ws.drawn[v as usize] != ws.epoch {
                ws.drawn[v as usize] = ws.epoch;
                ws.remaining[v as usize] = rng.random::<f32>();
            }
            ws.remaining[v as usize] -= weights.get(eid);
            if ws.remaining[v as usize] <= 0.0 {
                ws.active[v as usize] = ws.epoch;
                ws.queue.push(v);
            }
        }
    }
    ws.queue.len()
}

/// Like [`simulate_lt_cascade`] but returns the activated node set (for
/// engagement-trace inspection, mirroring `simulate_cascade_nodes`).
pub fn simulate_lt_cascade_nodes<R: Rng + ?Sized>(
    g: &CsrGraph,
    weights: &AdProbs,
    seeds: &[NodeId],
    ws: &mut LtWorkspace,
    rng: &mut R,
) -> Vec<NodeId> {
    simulate_lt_cascade(g, weights, seeds, ws, rng);
    ws.queue.clone()
}

/// Estimates the LT expected spread with `runs` simulations.
pub fn estimate_lt_spread(
    g: &CsrGraph,
    weights: &AdProbs,
    seeds: &[NodeId],
    runs: usize,
    seed: u64,
) -> f64 {
    if seeds.is_empty() || runs == 0 {
        return 0.0;
    }
    let mut ws = LtWorkspace::new(g.num_nodes());
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut total = 0usize;
    for _ in 0..runs {
        total += simulate_lt_cascade(g, weights, seeds, &mut ws, &mut rng);
    }
    total as f64 / runs as f64
}

/// Estimates the LT singleton spread `σ({u})` of **every** node with `runs`
/// simulations each, parallelized over node ranges (the LT counterpart of
/// `singleton_spreads_mc`, used for incentive pricing under LT).
pub fn singleton_spreads_lt_mc(
    g: &CsrGraph,
    weights: &AdProbs,
    runs: usize,
    seed: u64,
) -> Vec<f64> {
    crate::spread::singleton_spreads_with(
        g.num_nodes(),
        runs,
        seed,
        || LtWorkspace::new(g.num_nodes()),
        |u, ws, rng| simulate_lt_cascade(g, weights, &[u], ws, rng),
    )
}

/// Samples one LT reverse-reachable set: walking backwards, each node picks
/// **at most one** incoming edge (edge `e` with probability `w_e`, no edge
/// with probability `1 − Σ w`), per Kempe et al.'s live-edge model for LT.
///
/// This is the reference implementation the arena sampler's frequencies are
/// validated against; the hot path lives in `rm_rrsets::sampler`.
pub fn sample_lt_rr_set<R: Rng + ?Sized>(
    g: &CsrGraph,
    weights: &AdProbs,
    rng: &mut R,
    out: &mut Vec<NodeId>,
) {
    out.clear();
    let n = g.num_nodes();
    if n == 0 {
        return;
    }
    let root = rng.random_range(0..n) as NodeId;
    out.push(root);
    // Membership-only cycle guard: never iterated, so hash order cannot leak
    // into results. rm-lint: allow(nondet-iter)
    let mut seen = std::collections::HashSet::new();
    seen.insert(root);
    let mut cur = root;
    loop {
        // Pick at most one in-edge of `cur` with probability proportional to
        // its weight (residual mass = stop).
        let mut x: f64 = rng.random();
        let mut picked: Option<NodeId> = None;
        for (eid, u) in g.in_edges(cur) {
            x -= weights.get(eid) as f64;
            if x < 0.0 {
                picked = Some(u);
                break;
            }
        }
        match picked {
            Some(u) if !seen.contains(&u) => {
                seen.insert(u);
                out.push(u);
                cur = u;
            }
            _ => break, // stopped, or walked into a cycle
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, SeedableRng};
    use rm_diffusion_test_helpers::*;
    use rm_graph::builder::graph_from_edges;

    mod rm_diffusion_test_helpers {
        pub use crate::tic::TicModel;
        pub use crate::topic::TopicDistribution;
    }

    #[test]
    fn wc_weights_are_lt_feasible() {
        let g = graph_from_edges(5, &[(0, 1), (2, 1), (3, 1), (1, 4), (0, 4)]);
        let w = TicModel::weighted_cascade(&g).ad_probs(&TopicDistribution::uniform(1));
        assert!(lt_weights_feasible(&g, &w));
    }

    #[test]
    fn full_weight_chain_always_activates() {
        let g = graph_from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let w = AdProbs::from_vec(vec![1.0; 3]);
        let spread = estimate_lt_spread(&g, &w, &[0], 200, 3);
        assert!((spread - 4.0).abs() < 1e-12);
    }

    #[test]
    fn lt_two_parents_probability() {
        // v has two in-edges with weight 0.5 each. With one active parent,
        // P(v active) = 0.5 (threshold uniform). Seeds = {0}.
        let g = graph_from_edges(3, &[(0, 2), (1, 2)]);
        let w = AdProbs::from_vec(vec![0.5, 0.5]);
        let spread = estimate_lt_spread(&g, &w, &[0], 60_000, 7);
        assert!((spread - 1.5).abs() < 0.02, "spread {spread}");
        // Both parents active: v activates surely.
        let spread2 = estimate_lt_spread(&g, &w, &[0, 1], 5_000, 8);
        assert!((spread2 - 3.0).abs() < 1e-9);
    }

    #[test]
    fn lt_rr_sets_estimate_singleton_spread() {
        // σ_LT({u}) = n · Pr[u ∈ RR]. Chain with weight 1.
        let g = graph_from_edges(3, &[(0, 1), (1, 2)]);
        let w = AdProbs::from_vec(vec![1.0, 1.0]);
        let mut rng = SmallRng::seed_from_u64(4);
        let theta = 30_000;
        let mut hits0 = 0;
        let mut out = Vec::new();
        for _ in 0..theta {
            sample_lt_rr_set(&g, &w, &mut rng, &mut out);
            if out.contains(&0) {
                hits0 += 1;
            }
        }
        let est = 3.0 * hits0 as f64 / theta as f64;
        assert!((est - 3.0).abs() < 0.05, "est {est}");
    }

    #[test]
    fn lt_rr_matches_forward_simulation() {
        let g = graph_from_edges(4, &[(0, 1), (2, 1), (1, 3), (0, 3)]);
        let w = AdProbs::from_vec(vec![0.4, 0.4, 0.3, 0.3]);
        assert!(lt_weights_feasible(&g, &w));
        let forward = estimate_lt_spread(&g, &w, &[0], 80_000, 5);
        let mut rng = SmallRng::seed_from_u64(6);
        let theta = 80_000;
        let mut hits = 0;
        let mut out = Vec::new();
        for _ in 0..theta {
            sample_lt_rr_set(&g, &w, &mut rng, &mut out);
            if out.contains(&0) {
                hits += 1;
            }
        }
        let reverse = 4.0 * hits as f64 / theta as f64;
        assert!(
            (forward - reverse).abs() < 0.05,
            "forward {forward} vs reverse {reverse}"
        );
    }

    #[test]
    fn simulate_nodes_returns_active_set() {
        let g = graph_from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let w = AdProbs::from_vec(vec![1.0; 3]);
        let mut ws = LtWorkspace::new(4);
        let mut rng = SmallRng::seed_from_u64(9);
        let mut nodes = simulate_lt_cascade_nodes(&g, &w, &[1], &mut ws, &mut rng);
        nodes.sort_unstable();
        assert_eq!(nodes, vec![1, 2, 3]);
    }

    #[test]
    fn workspace_reuse_is_clean() {
        let g = graph_from_edges(3, &[(0, 1), (1, 2)]);
        let w = AdProbs::from_vec(vec![1.0, 1.0]);
        let mut ws = LtWorkspace::new(3);
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..1000 {
            assert_eq!(simulate_lt_cascade(&g, &w, &[0], &mut ws, &mut rng), 3);
        }
    }

    #[test]
    fn normalize_waterfills_overfull_nodes_only() {
        // Node 2 has in-weights 0.9 + 0.9 = 1.8 (infeasible); node 1 has 0.3.
        let g = graph_from_edges(3, &[(0, 1), (0, 2), (1, 2)]);
        let w = AdProbs::from_vec(vec![0.3, 0.9, 0.9]);
        assert!(!lt_weights_feasible(&g, &w));
        let norm = normalize_lt_weights(&g, &w);
        assert!(lt_weights_feasible(&g, &norm));
        // Untouched node keeps its weight bit-for-bit.
        assert_eq!(norm.get(0), 0.3);
        // Overfull node scaled to sum 1 with proportions preserved.
        assert!((norm.get(1) - 0.5).abs() < 1e-6);
        assert!((norm.get(2) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn normalize_is_identity_on_feasible_weights() {
        let g = graph_from_edges(3, &[(0, 2), (1, 2)]);
        let w = AdProbs::from_vec(vec![0.5, 0.5]);
        let norm = normalize_lt_weights(&g, &w);
        // Feasible input shares storage (no copy at all).
        assert!(norm.shares_storage(&w));
    }

    #[test]
    fn singleton_spreads_lt_match_chain_truth() {
        let g = graph_from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let w = AdProbs::from_vec(vec![1.0; 3]);
        let s = singleton_spreads_lt_mc(&g, &w, 50, 5);
        assert_eq!(s, vec![4.0, 3.0, 2.0, 1.0]);
    }
}
