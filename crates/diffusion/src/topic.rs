//! Topic distributions for ads.
//!
//! The paper's quality experiments (§5) use Flixster's learned topic model
//! with `L = 10` and arrange `h = 10` ads so that "every two ads are in pure
//! competition, i.e., have the same topic distribution, with probability 0.91
//! in one randomly selected latent topic, and 0.01 in all others".
//! [`TopicDistribution::competition_pairs`] reproduces that construction.

use rand::Rng;

/// A distribution `γ_i` over `L` latent topics: `γ^z_i = Pr(Z = z | i)`,
/// `Σ_z γ^z_i = 1`.
#[derive(Clone, Debug, PartialEq)]
pub struct TopicDistribution {
    gamma: Vec<f32>,
}

impl TopicDistribution {
    /// Builds from raw weights, normalizing to sum 1.
    ///
    /// # Panics
    /// Panics if `weights` is empty, has a negative/non-finite entry, or sums
    /// to zero.
    pub fn new(weights: &[f32]) -> Self {
        assert!(!weights.is_empty(), "at least one topic required");
        let s: f32 = weights.iter().copied().sum();
        assert!(
            s.is_finite() && s > 0.0 && weights.iter().all(|&w| w >= 0.0),
            "topic weights must be non-negative and not all zero"
        );
        TopicDistribution {
            gamma: weights.iter().map(|&w| w / s).collect(),
        }
    }

    /// Uniform distribution over `l` topics.
    pub fn uniform(l: usize) -> Self {
        assert!(l > 0);
        TopicDistribution {
            gamma: vec![1.0 / l as f32; l],
        }
    }

    /// Point mass on topic `z`.
    pub fn delta(l: usize, z: usize) -> Self {
        assert!(z < l);
        let mut g = vec![0.0; l];
        g[z] = 1.0;
        TopicDistribution { gamma: g }
    }

    /// Peaked distribution: `dominant` mass on topic `z`, remainder spread
    /// evenly over the other topics. With `l = 10, dominant = 0.91` this is
    /// exactly the paper's ad profile (0.91 on one topic, 0.01 elsewhere).
    pub fn peaked(l: usize, z: usize, dominant: f32) -> Self {
        assert!(z < l);
        assert!((0.0..=1.0).contains(&dominant));
        if l == 1 {
            return TopicDistribution { gamma: vec![1.0] };
        }
        let rest = (1.0 - dominant) / (l - 1) as f32;
        let mut g = vec![rest; l];
        g[z] = dominant;
        TopicDistribution { gamma: g }
    }

    /// The paper's §5 marketplace: `h` ads over `l` topics such that ads
    /// `2k` and `2k+1` share a peaked distribution on a distinct random topic
    /// — every pair is in pure competition with each other and orthogonal to
    /// the rest. Requires `l >= ceil(h / 2)` distinct topics.
    pub fn competition_pairs<R: Rng + ?Sized>(
        h: usize,
        l: usize,
        dominant: f32,
        rng: &mut R,
    ) -> Vec<TopicDistribution> {
        let pairs = h.div_ceil(2);
        assert!(
            l >= pairs,
            "need at least {pairs} topics for {h} ads, got {l}"
        );
        // Random choice of `pairs` distinct topics.
        let mut topics: Vec<usize> = (0..l).collect();
        for i in (1..topics.len()).rev() {
            let j = rng.random_range(0..=i);
            topics.swap(i, j);
        }
        (0..h)
            .map(|i| TopicDistribution::peaked(l, topics[i / 2], dominant))
            .collect()
    }

    /// Random distribution drawn from a symmetric Dirichlet via normalized
    /// exponentials of concentration `alpha` (small `alpha` ⇒ sparse/peaked).
    pub fn random_dirichlet<R: Rng + ?Sized>(l: usize, alpha: f64, rng: &mut R) -> Self {
        assert!(l > 0 && alpha > 0.0);
        // Gamma(alpha) sampling via Marsaglia–Tsang (alpha < 1 boost trick).
        let mut g = vec![0f32; l];
        for x in &mut g {
            *x = sample_gamma(alpha, rng) as f32;
        }
        if g.iter().all(|&x| x <= 0.0) {
            g[rng.random_range(0..l)] = 1.0;
        }
        TopicDistribution::new(&g)
    }

    /// Number of topics `L`.
    #[inline]
    pub fn num_topics(&self) -> usize {
        self.gamma.len()
    }

    /// Mixture weights (normalized).
    #[inline]
    pub fn weights(&self) -> &[f32] {
        &self.gamma
    }

    /// `γ^z`.
    #[inline]
    pub fn weight(&self, z: usize) -> f32 {
        self.gamma[z]
    }

    /// Cosine similarity with another distribution — a simple competition
    /// measure between two ads (1 = pure competition for identical peaks).
    pub fn similarity(&self, other: &TopicDistribution) -> f32 {
        assert_eq!(self.num_topics(), other.num_topics());
        let dot: f32 = self
            .gamma
            .iter()
            .zip(&other.gamma)
            .map(|(a, b)| a * b)
            .sum();
        let na: f32 = self.gamma.iter().map(|a| a * a).sum::<f32>().sqrt();
        let nb: f32 = other.gamma.iter().map(|b| b * b).sum::<f32>().sqrt();
        if na == 0.0 || nb == 0.0 {
            0.0
        } else {
            dot / (na * nb)
        }
    }
}

/// Marsaglia–Tsang Gamma(k, 1) sampler (with the `k < 1` boosting step).
fn sample_gamma<R: Rng + ?Sized>(k: f64, rng: &mut R) -> f64 {
    if k < 1.0 {
        let u: f64 = rng.random();
        return sample_gamma(k + 1.0, rng) * u.powf(1.0 / k);
    }
    let d = k - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        // Standard normal via Box–Muller.
        let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = rng.random();
        let x = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.random();
        if u < 1.0 - 0.0331 * x.powi(4) || u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
            return d * v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, SeedableRng};

    fn assert_normalized(t: &TopicDistribution) {
        let s: f32 = t.weights().iter().sum();
        assert!((s - 1.0).abs() < 1e-5, "sum {s}");
    }

    #[test]
    fn normalization() {
        let t = TopicDistribution::new(&[2.0, 6.0]);
        assert_normalized(&t);
        assert!((t.weight(0) - 0.25).abs() < 1e-6);
    }

    #[test]
    fn peaked_matches_paper_profile() {
        let t = TopicDistribution::peaked(10, 3, 0.91);
        assert_normalized(&t);
        assert!((t.weight(3) - 0.91).abs() < 1e-6);
        assert!((t.weight(0) - 0.01).abs() < 1e-6);
    }

    #[test]
    fn competition_pairs_structure() {
        let mut rng = SmallRng::seed_from_u64(9);
        let ads = TopicDistribution::competition_pairs(10, 10, 0.91, &mut rng);
        assert_eq!(ads.len(), 10);
        for k in 0..5 {
            assert_eq!(ads[2 * k], ads[2 * k + 1], "pair {k} not identical");
            assert!(ads[2 * k].similarity(&ads[2 * k + 1]) > 0.999);
        }
        // Different pairs are near-orthogonal.
        assert!(ads[0].similarity(&ads[2]) < 0.1);
    }

    #[test]
    fn single_topic_is_trivial() {
        let t = TopicDistribution::peaked(1, 0, 0.91);
        assert_eq!(t.weights(), &[1.0]);
    }

    #[test]
    fn dirichlet_normalized_and_varied() {
        let mut rng = SmallRng::seed_from_u64(10);
        for _ in 0..20 {
            let t = TopicDistribution::random_dirichlet(5, 0.3, &mut rng);
            assert_normalized(&t);
        }
    }

    #[test]
    #[should_panic]
    fn rejects_zero_weights() {
        let _ = TopicDistribution::new(&[0.0, 0.0]);
    }
}
