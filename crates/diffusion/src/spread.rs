//! Monte-Carlo expected-spread estimation, sequential and parallel.
//!
//! `σ_i(S)` is the expected cascade size from seed set `S` under the
//! ad-specific probabilities. The paper uses 5K-run MC estimates of the
//! singleton spreads `σ_i({u})` to price seed incentives on its quality
//! datasets; [`singleton_spreads_mc`] reproduces that computation with the
//! work spread across threads.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use rm_graph::{CsrGraph, NodeId};

use crate::cascade::{simulate_cascade, CascadeWorkspace};
use crate::tic::AdProbs;

/// A spread estimate with its sampling metadata.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SpreadEstimate {
    /// Estimated expected spread.
    pub spread: f64,
    /// Number of Monte-Carlo runs behind the estimate.
    pub runs: usize,
}

/// Estimates `σ(S)` with `runs` Monte-Carlo simulations, split across
/// available threads. Deterministic in `seed` (per-thread RNG streams are
/// derived from it) regardless of thread scheduling.
pub fn estimate_spread(
    g: &CsrGraph,
    probs: &AdProbs,
    seeds: &[NodeId],
    runs: usize,
    seed: u64,
) -> SpreadEstimate {
    if seeds.is_empty() || runs == 0 {
        return SpreadEstimate { spread: 0.0, runs };
    }
    let threads = num_threads(runs);
    if threads <= 1 {
        let mut ws = CascadeWorkspace::new(g.num_nodes());
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut total = 0usize;
        for _ in 0..runs {
            total += simulate_cascade(g, probs, seeds, &mut ws, &mut rng);
        }
        return SpreadEstimate {
            spread: total as f64 / runs as f64,
            runs,
        };
    }

    let per = runs / threads;
    let extra = runs % threads;
    let mut totals = vec![0u64; threads];
    std::thread::scope(|scope| {
        for (tid, slot) in totals.iter_mut().enumerate() {
            let my_runs = per + usize::from(tid < extra);
            scope.spawn(move || {
                let mut ws = CascadeWorkspace::new(g.num_nodes());
                let mut rng = SmallRng::seed_from_u64(
                    // Injective per tid; golden-pinned legacy stream.
                    // rm-lint: allow(rng-discipline)
                    seed ^ (tid as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                let mut total = 0u64;
                for _ in 0..my_runs {
                    total += simulate_cascade(g, probs, seeds, &mut ws, &mut rng) as u64;
                }
                *slot = total;
            });
        }
    });
    let total: u64 = totals.iter().sum();
    SpreadEstimate {
        spread: total as f64 / runs as f64,
        runs,
    }
}

/// Estimates the singleton spread `σ({u})` of **every** node with `runs` MC
/// simulations each, parallelized over node ranges. This is the incentive
/// pricing input: `c_i(u) = f(σ_i({u}))`.
pub fn singleton_spreads_mc(g: &CsrGraph, probs: &AdProbs, runs: usize, seed: u64) -> Vec<f64> {
    singleton_spreads_with(
        g.num_nodes(),
        runs,
        seed,
        || CascadeWorkspace::new(g.num_nodes()),
        |u, ws, rng| simulate_cascade(g, probs, &[u], ws, rng),
    )
}

/// Shared scaffolding for per-node singleton-spread Monte-Carlo, generic
/// over the cascade simulator: partitions nodes across threads, derives a
/// per-thread RNG stream, and averages `runs` calls of `sim` per node. Both
/// the IC estimator above and the LT one (`lt::singleton_spreads_lt_mc`)
/// are thin instantiations, so thread-cap or seeding changes apply to every
/// model at once.
pub(crate) fn singleton_spreads_with<W, M, F>(
    n: usize,
    runs: usize,
    seed: u64,
    make_ws: M,
    sim: F,
) -> Vec<f64>
where
    M: Fn() -> W + Sync,
    F: Fn(NodeId, &mut W, &mut SmallRng) -> usize + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let threads = num_threads(n);
    let chunk = n.div_ceil(threads);
    let mut out = vec![0.0f64; n];
    std::thread::scope(|scope| {
        for (tid, slice) in out.chunks_mut(chunk).enumerate() {
            let make_ws = &make_ws;
            let sim = &sim;
            scope.spawn(move || {
                let lo = tid * chunk;
                let mut ws = make_ws();
                let mut rng = SmallRng::seed_from_u64(
                    // Injective per tid; golden-pinned legacy stream.
                    // rm-lint: allow(rng-discipline)
                    seed ^ (tid as u64).wrapping_mul(0xD134_2543_DE82_EF95),
                );
                for (off, slot) in slice.iter_mut().enumerate() {
                    let u = (lo + off) as NodeId;
                    let mut total = 0usize;
                    for _ in 0..runs {
                        total += sim(u, &mut ws, &mut rng);
                    }
                    *slot = total as f64 / runs as f64;
                }
            });
        }
    });
    out
}

fn num_threads(work_items: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    hw.min(work_items.max(1)).min(32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rm_graph::builder::graph_from_edges;

    #[test]
    fn deterministic_chain_has_exact_spread() {
        let g = graph_from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let probs = AdProbs::from_vec(vec![1.0; 4]);
        let est = estimate_spread(&g, &probs, &[0], 200, 42);
        assert!((est.spread - 5.0).abs() < 1e-12);
    }

    #[test]
    fn two_hop_probability_math() {
        // 0 -p-> 1 -q-> 2: E[spread({0})] = 1 + p + p*q.
        let g = graph_from_edges(3, &[(0, 1), (1, 2)]);
        let (p, q) = (0.6f64, 0.3f64);
        let probs = AdProbs::from_vec(vec![p as f32, q as f32]);
        let est = estimate_spread(&g, &probs, &[0], 60_000, 7);
        let expect = 1.0 + p + p * q;
        assert!(
            (est.spread - expect).abs() < 0.03,
            "expected {expect}, got {}",
            est.spread
        );
    }

    #[test]
    fn spread_bounded_by_seed_count_and_n() {
        let g = graph_from_edges(6, &[(0, 1), (2, 3), (4, 5)]);
        let probs = AdProbs::from_vec(vec![0.5; 3]);
        let est = estimate_spread(&g, &probs, &[0, 2], 500, 3);
        assert!(est.spread >= 2.0 && est.spread <= 6.0);
    }

    #[test]
    fn deterministic_in_seed() {
        let g = graph_from_edges(4, &[(0, 1), (0, 2), (1, 3)]);
        let probs = AdProbs::from_vec(vec![0.5; 3]);
        let a = estimate_spread(&g, &probs, &[0], 1000, 11);
        let b = estimate_spread(&g, &probs, &[0], 1000, 11);
        assert_eq!(a, b);
    }

    #[test]
    fn singleton_spreads_shape_and_bounds() {
        let g = graph_from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let probs = AdProbs::from_vec(vec![1.0; 3]);
        let s = singleton_spreads_mc(&g, &probs, 50, 5);
        assert_eq!(s.len(), 4);
        assert_eq!(s, vec![4.0, 3.0, 2.0, 1.0]);
    }

    #[test]
    fn empty_seed_set_spreads_zero() {
        let g = graph_from_edges(3, &[(0, 1)]);
        let probs = AdProbs::from_vec(vec![1.0]);
        assert_eq!(estimate_spread(&g, &probs, &[], 100, 1).spread, 0.0);
    }
}
