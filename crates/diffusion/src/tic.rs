//! The Topic-aware Independent Cascade model and ad-specific probability
//! flattening (Eq. 1).

// INVARIANT(indexing): all computed indices in this file are bounded by
// construction — node ids come from the owning CsrGraph (< num_nodes) and
// slot/offset arithmetic is derived from lengths computed in the same
// function. Bounds are exercised by the crate test suite; new indexing
// must preserve this discipline.

use std::sync::{Arc, OnceLock};

use rand::Rng;

use rm_graph::{CsrGraph, NodeId};

use crate::topic::TopicDistribution;

/// Per-edge, per-topic influence probabilities: `p^z_{u,v}` stored edge-major
/// (`probs[eid * L + z]`), indexed by canonical edge id.
///
/// One `TicModel` (behind an `Arc`) is shared by every advertiser of an
/// instance; the per-ad mixtures are applied lazily (see
/// [`TicModel::mixed_prob`] and the RR sampler's TIC mode), so memory does
/// not scale with the number of ads.
#[derive(Clone, Debug)]
pub struct TicModel {
    l: usize,
    probs: Vec<f32>,
    /// In-slot-gathered view for the reverse sampler, built at most once per
    /// model (all per-ad samplers share it through the `Arc`). Cloning a
    /// `TicModel` clones the cache handle, not the table.
    in_slots: OnceLock<Arc<TicInSlots>>,
}

/// Configuration for the synthetic topical probability assignment used by the
/// Flixster-like dataset (see `DESIGN.md → Substitutions`).
#[derive(Clone, Copy, Debug)]
pub struct TopicalConfig {
    /// Fraction of the edge's base strength put on its dominant topic.
    pub dominant_weight: f32,
    /// Base strength multiplier applied to the Weighted-Cascade prior
    /// `1/indeg(v)`.
    pub strength: f32,
}

impl Default for TopicalConfig {
    fn default() -> Self {
        TopicalConfig {
            dominant_weight: 0.9,
            strength: 1.0,
        }
    }
}

impl TicModel {
    /// Builds from a raw edge-major probability matrix.
    ///
    /// # Panics
    /// Panics if the matrix shape does not match the graph or any probability
    /// is outside `[0, 1]`.
    pub fn from_matrix(g: &CsrGraph, l: usize, probs: Vec<f32>) -> Self {
        // INVARIANT: documented constructor contract (# Panics above);
        // validating at the API boundary keeps the sampling loops free of
        // per-edge range checks.
        assert!(l > 0);
        // INVARIANT: constructor contract (see above).
        assert_eq!(
            probs.len(),
            g.num_edges() * l,
            "probability matrix shape mismatch"
        );
        // INVARIANT: constructor contract (see above).
        assert!(
            probs.iter().all(|&p| (0.0..=1.0).contains(&p)),
            "probabilities must lie in [0,1]"
        );
        TicModel {
            l,
            probs,
            in_slots: OnceLock::new(),
        }
    }

    /// Single-topic model with a uniform probability `p` on every edge.
    pub fn uniform(g: &CsrGraph, p: f32) -> Self {
        Self::from_matrix(g, 1, vec![p; g.num_edges()])
    }

    /// Single-topic **Weighted Cascade** model (Kempe et al.):
    /// `p_{u,v} = 1 / indeg(v)`. This is the model the paper uses for
    /// Epinions, DBLP and LiveJournal.
    pub fn weighted_cascade(g: &CsrGraph) -> Self {
        let mut probs = vec![0.0f32; g.num_edges()];
        for v in 0..g.num_nodes() as NodeId {
            let indeg = g.in_degree(v);
            if indeg == 0 {
                continue;
            }
            let p = 1.0 / indeg as f32;
            for (eid, _) in g.in_edges(v) {
                probs[eid as usize] = p;
            }
        }
        TicModel {
            l: 1,
            probs,
            in_slots: OnceLock::new(),
        }
    }

    /// Single-topic **trivalency** model: each edge uniformly one of
    /// {0.1, 0.01, 0.001}.
    pub fn trivalency<R: Rng + ?Sized>(g: &CsrGraph, rng: &mut R) -> Self {
        const LEVELS: [f32; 3] = [0.1, 0.01, 0.001];
        let probs = (0..g.num_edges())
            .map(|_| LEVELS[rng.random_range(0..3usize)])
            .collect();
        TicModel {
            l: 1,
            probs,
            in_slots: OnceLock::new(),
        }
    }

    /// Multi-topic synthetic model: every edge gets a uniformly random
    /// dominant topic carrying `dominant_weight` of its base strength (the
    /// Weighted-Cascade prior `strength / indeg(v)`, clamped to 1), with the
    /// remainder spread over the other topics. Ads peaked on an edge's
    /// dominant topic therefore see near-WC probabilities on it while
    /// off-topic ads see only the residue — mimicking learned TIC models
    /// where influence is strongly topic-localized.
    pub fn topical<R: Rng + ?Sized>(
        g: &CsrGraph,
        l: usize,
        cfg: TopicalConfig,
        rng: &mut R,
    ) -> Self {
        // INVARIANT: constructor contract — a TIC model needs ≥1 topic.
        assert!(l >= 1);
        let m = g.num_edges();
        let mut probs = vec![0.0f32; m * l];
        for v in 0..g.num_nodes() as NodeId {
            let indeg = g.in_degree(v);
            if indeg == 0 {
                continue;
            }
            let base = (cfg.strength / indeg as f32).min(1.0);
            for (eid, _) in g.in_edges(v) {
                let z = rng.random_range(0..l);
                let row = &mut probs[eid as usize * l..(eid as usize + 1) * l];
                if l == 1 {
                    row[0] = base;
                } else {
                    let rest = base * (1.0 - cfg.dominant_weight) / (l - 1) as f32;
                    row.fill(rest);
                    row[z] = base * cfg.dominant_weight;
                }
            }
        }
        TicModel {
            l,
            probs,
            in_slots: OnceLock::new(),
        }
    }

    /// Number of latent topics `L`.
    #[inline]
    pub fn num_topics(&self) -> usize {
        self.l
    }

    /// `p^z_{u,v}` for a given canonical edge id.
    #[inline]
    pub fn topic_prob(&self, eid: u32, z: usize) -> f32 {
        self.probs[eid as usize * self.l + z]
    }

    /// Flattens the model for one ad (Eq. 1):
    /// `p^i_{u,v} = Σ_z γ^z_i · p^z_{u,v}`, producing a dense per-edge
    /// probability array consumed by the cascade simulator and RR sampler.
    pub fn ad_probs(&self, gamma: &TopicDistribution) -> AdProbs {
        // INVARIANT: API contract — γ must be over this model's topic space;
        // flattening with a mismatched γ would silently mis-weight edges.
        assert_eq!(gamma.num_topics(), self.l, "ad topic count mismatch");
        let m = self.probs.len() / self.l.max(1);
        let mut out = vec![0.0f32; m];
        if self.l == 1 {
            out.copy_from_slice(&self.probs);
        } else {
            let w = gamma.weights();
            for (e, slot) in out.iter_mut().enumerate() {
                let row = &self.probs[e * self.l..(e + 1) * self.l];
                let mut acc = 0.0f32;
                for z in 0..self.l {
                    acc += w[z] * row[z];
                }
                *slot = acc.min(1.0);
            }
        }
        AdProbs {
            probs: Arc::new(out),
        }
    }

    /// The mixed ad-specific probability of one edge (Eq. 1), computed
    /// lazily: `p^γ_{u,v} = min(1, Σ_z γ^z · p^z_{u,v})`.
    ///
    /// Bit-compatibility contract: the accumulation runs in topic order with
    /// `f32` arithmetic and a final `min(1.0)` clamp — exactly the arithmetic
    /// of [`TicModel::ad_probs`] — so lazy mixing and ahead-of-time
    /// flattening produce the same probability to the last bit. (For `L = 1`
    /// the weight is exactly `1.0`, so `1.0 · p` then `min(1.0)` is again
    /// the flat value.)
    #[inline]
    pub fn mixed_prob(&self, eid: u32, gamma: &TopicDistribution) -> f32 {
        debug_assert_eq!(gamma.num_topics(), self.l, "ad topic count mismatch");
        let row = &self.probs[eid as usize * self.l..(eid as usize + 1) * self.l];
        mix_row(row, gamma.weights())
    }

    /// The shared in-slot-gathered view of this model on `g`, built at most
    /// once (subsequent calls return the cached table). Every per-ad RR
    /// sampler holds the same `Arc`, which is what keeps TIC sampling memory
    /// independent of the number of advertisers.
    ///
    /// # Panics
    /// Panics if called with a graph whose edge count differs from the one
    /// the view was first built on (one `TicModel` binds to one graph).
    pub fn in_slot_view(&self, g: &CsrGraph) -> Arc<TicInSlots> {
        let view = self
            .in_slots
            .get_or_init(|| Arc::new(TicInSlots::build(g, self)));
        // INVARIANT: documented contract (# Panics above) — one TicModel
        // binds to one graph.
        assert_eq!(
            view.sources().len(),
            g.num_edges(),
            "TicModel in-slot view was built on a different graph"
        );
        Arc::clone(view)
    }

    /// Approximate resident bytes of the probability matrix.
    pub fn memory_bytes(&self) -> usize {
        self.probs.len() * std::mem::size_of::<f32>()
    }
}

/// Mixes one edge-major probability row with the given topic weights:
/// sequential `f32` accumulation in topic order, clamped to 1. This is the
/// single arithmetic definition shared by [`TicModel::ad_probs`],
/// [`TicModel::mixed_prob`] and [`TicInSlots::mixed_prob`], so every code
/// path produces bit-identical mixed probabilities.
#[inline]
pub fn mix_row(row: &[f32], weights: &[f32]) -> f32 {
    let mut acc = 0.0f32;
    for (&w, &p) in weights.iter().zip(row) {
        acc += w * p;
    }
    acc.min(1.0)
}

/// The [`TicModel`] probability matrix regathered into the graph's in-slot
/// order: `probs[slot * L + z]` is `p^z` of the edge occupying in-slot
/// `slot`, and `src[slot]` its source node. This is the layout the reverse
/// (RR) sampler reads — one sequential stream per expanded node, no
/// canonical-edge-id indirection — shared by every advertiser of an
/// instance through an `Arc` (see [`TicModel::in_slot_view`]).
#[derive(Clone, Debug)]
pub struct TicInSlots {
    l: usize,
    src: Vec<NodeId>,
    probs: Vec<f32>,
}

impl TicInSlots {
    /// Gathers `tic` into `g`'s in-slot order.
    fn build(g: &CsrGraph, tic: &TicModel) -> Self {
        let (in_sources, in_eids) = g.in_slots();
        let l = tic.l;
        let mut probs = Vec::with_capacity(in_eids.len() * l);
        for &eid in in_eids {
            probs.extend_from_slice(&tic.probs[eid as usize * l..(eid as usize + 1) * l]);
        }
        TicInSlots {
            l,
            src: in_sources.to_vec(),
            probs,
        }
    }

    /// Number of latent topics `L`.
    #[inline]
    pub fn num_topics(&self) -> usize {
        self.l
    }

    /// Source node of each in-slot (parallel to the graph's in-slot order).
    #[inline]
    pub fn sources(&self) -> &[NodeId] {
        &self.src
    }

    /// The per-topic probability row of one in-slot.
    #[inline]
    pub fn row(&self, slot: usize) -> &[f32] {
        &self.probs[slot * self.l..(slot + 1) * self.l]
    }

    /// The mixed probability of one in-slot under the given topic weights
    /// (same arithmetic as [`TicModel::mixed_prob`], see [`mix_row`]).
    #[inline]
    pub fn mixed_prob(&self, slot: usize, weights: &[f32]) -> f32 {
        mix_row(self.row(slot), weights)
    }

    /// Resident bytes of the shared table (counted **once** per instance by
    /// memory accounting, not once per advertiser).
    pub fn memory_bytes(&self) -> usize {
        self.src.capacity() * std::mem::size_of::<NodeId>()
            + self.probs.capacity() * std::mem::size_of::<f32>()
    }
}

/// Flattened ad-specific edge probabilities, indexed by canonical edge id.
/// Cheap to clone (shared storage) so per-ad copies can be handed to worker
/// threads and, under single-topic models, shared across all ads.
#[derive(Clone, Debug)]
pub struct AdProbs {
    probs: Arc<Vec<f32>>,
}

impl AdProbs {
    /// Wraps an explicit probability vector (one entry per canonical edge).
    pub fn from_vec(probs: Vec<f32>) -> Self {
        // INVARIANT: constructor contract — probabilities validated once at
        // the boundary so traversal loops can skip range checks.
        assert!(probs.iter().all(|&p| (0.0..=1.0).contains(&p)));
        AdProbs {
            probs: Arc::new(probs),
        }
    }

    /// Probability of the given edge.
    #[inline]
    pub fn get(&self, eid: u32) -> f32 {
        self.probs[eid as usize]
    }

    /// Underlying slice.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.probs
    }

    /// Number of edges covered.
    #[inline]
    pub fn len(&self) -> usize {
        self.probs.len()
    }

    /// True when the graph has no edges.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.probs.is_empty()
    }

    /// True if this and `other` share storage (used to dedupe memory
    /// accounting for single-topic instances).
    pub fn shares_storage(&self, other: &AdProbs) -> bool {
        Arc::ptr_eq(&self.probs, &other.probs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, SeedableRng};
    use rm_graph::builder::graph_from_edges;

    fn diamond() -> CsrGraph {
        graph_from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn weighted_cascade_probabilities() {
        let g = diamond();
        let tic = TicModel::weighted_cascade(&g);
        // Node 3 has indeg 2 -> both incoming edges get 0.5.
        for (eid, _) in g.in_edges(3) {
            assert!((tic.topic_prob(eid, 0) - 0.5).abs() < 1e-6);
        }
        // Node 1 has indeg 1 -> probability 1.
        for (eid, _) in g.in_edges(1) {
            assert!((tic.topic_prob(eid, 0) - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn eq1_mixture() {
        let g = diamond();
        let l = 2;
        // Edge-major: topic 0 prob 0.8, topic 1 prob 0.2 on every edge.
        let probs: Vec<f32> = (0..g.num_edges()).flat_map(|_| [0.8, 0.2]).collect();
        let tic = TicModel::from_matrix(&g, l, probs);
        let gamma = TopicDistribution::new(&[0.25, 0.75]);
        let ap = tic.ad_probs(&gamma);
        let expect = 0.25 * 0.8 + 0.75 * 0.2;
        for e in 0..g.num_edges() as u32 {
            assert!((ap.get(e) - expect).abs() < 1e-6);
        }
    }

    #[test]
    fn single_topic_reduces_to_ic() {
        // Footnote 7: identical topic distributions make TIC = IC.
        let g = diamond();
        let tic = TicModel::uniform(&g, 0.3);
        let a = tic.ad_probs(&TopicDistribution::uniform(1));
        let b = tic.ad_probs(&TopicDistribution::delta(1, 0));
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn topical_model_peaks_match_ads() {
        let g = diamond();
        let mut rng = SmallRng::seed_from_u64(5);
        let tic = TicModel::topical(&g, 4, TopicalConfig::default(), &mut rng);
        // An ad peaked on edge e's dominant topic must see a higher
        // probability than an ad peaked elsewhere.
        for e in 0..g.num_edges() as u32 {
            let probs: Vec<f32> = (0..4).map(|z| tic.topic_prob(e, z)).collect();
            let zmax = (0..4)
                .max_by(|&a, &b| probs[a].partial_cmp(&probs[b]).unwrap())
                .unwrap();
            let on = tic.ad_probs(&TopicDistribution::peaked(4, zmax, 0.91));
            let off = tic.ad_probs(&TopicDistribution::peaked(4, (zmax + 1) % 4, 0.91));
            assert!(
                on.get(e) > off.get(e),
                "edge {e}: on {} off {}",
                on.get(e),
                off.get(e)
            );
        }
    }

    #[test]
    fn trivalency_levels_only() {
        let g = diamond();
        let mut rng = SmallRng::seed_from_u64(6);
        let tic = TicModel::trivalency(&g, &mut rng);
        for e in 0..g.num_edges() as u32 {
            let p = tic.topic_prob(e, 0);
            assert!([0.1, 0.01, 0.001].iter().any(|&x| (p - x).abs() < 1e-9));
        }
    }

    #[test]
    #[should_panic]
    fn shape_mismatch_rejected() {
        let g = diamond();
        let _ = TicModel::from_matrix(&g, 2, vec![0.1; 3]);
    }

    #[test]
    fn mixed_prob_bitwise_matches_ad_probs() {
        // The lazy mix and the ahead-of-time flatten must agree to the last
        // bit, for single-topic, delta, and general mixtures alike.
        let g = diamond();
        let mut rng = SmallRng::seed_from_u64(17);
        let tic = TicModel::topical(&g, 5, TopicalConfig::default(), &mut rng);
        for gamma in [
            TopicDistribution::uniform(5),
            TopicDistribution::delta(5, 2),
            TopicDistribution::peaked(5, 0, 0.91),
            TopicDistribution::new(&[0.3, 0.1, 0.2, 0.15, 0.25]),
        ] {
            let flat = tic.ad_probs(&gamma);
            for e in 0..g.num_edges() as u32 {
                assert_eq!(tic.mixed_prob(e, &gamma).to_bits(), flat.get(e).to_bits());
            }
        }
        let single = TicModel::weighted_cascade(&g);
        let gamma = TopicDistribution::uniform(1);
        let flat = single.ad_probs(&gamma);
        for e in 0..g.num_edges() as u32 {
            assert_eq!(
                single.mixed_prob(e, &gamma).to_bits(),
                flat.get(e).to_bits()
            );
        }
    }

    #[test]
    fn in_slot_view_is_shared_and_matches_edge_rows() {
        let g = diamond();
        let mut rng = SmallRng::seed_from_u64(23);
        let tic = TicModel::topical(&g, 3, TopicalConfig::default(), &mut rng);
        let view = tic.in_slot_view(&g);
        // Built once: a second request hands back the same allocation.
        assert!(Arc::ptr_eq(&view, &tic.in_slot_view(&g)));
        assert_eq!(view.num_topics(), 3);
        assert_eq!(view.sources().len(), g.num_edges());
        // Slot rows are the canonical-edge rows regathered in in-slot order,
        // and slot mixing equals edge mixing bit-for-bit.
        let (in_sources, in_eids) = g.in_slots();
        let gamma = TopicDistribution::new(&[0.5, 0.2, 0.3]);
        for (slot, (&src, &eid)) in in_sources.iter().zip(in_eids).enumerate() {
            assert_eq!(view.sources()[slot], src);
            for z in 0..3 {
                assert_eq!(
                    view.row(slot)[z].to_bits(),
                    tic.topic_prob(eid, z).to_bits()
                );
            }
            assert_eq!(
                view.mixed_prob(slot, gamma.weights()).to_bits(),
                tic.mixed_prob(eid, &gamma).to_bits()
            );
        }
        assert!(view.memory_bytes() > 0);
        // Cloning the model clones the cache handle, not the table.
        let clone = tic.clone();
        assert!(Arc::ptr_eq(&view, &clone.in_slot_view(&g)));
    }

    #[test]
    #[should_panic(expected = "different graph")]
    fn in_slot_view_rejects_a_different_graph() {
        let g = diamond();
        let tic = TicModel::uniform(&g, 0.4);
        let _ = tic.in_slot_view(&g);
        let other = graph_from_edges(3, &[(0, 1), (1, 2)]);
        let _ = tic.in_slot_view(&other);
    }
}
